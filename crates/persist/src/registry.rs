//! The serving-side model registry: load snapshot files, validate them,
//! and atomically hot-swap the active model under live traffic.
//!
//! A [`ModelRegistry`] owns one *active* `Arc<T>` slot. Scoring threads
//! call [`ModelRegistry::active`] per batch — a read-lock plus an `Arc`
//! clone, never blocked by a concurrent install for longer than the swap
//! of one pointer — while an operator (or a watcher thread) installs new
//! generations with [`ModelRegistry::install`], [`load_file`] or
//! [`load_dir`]. In-flight batches keep scoring against the `Arc` they
//! already cloned; the swap is torn-batch-free by construction.
//!
//! Files are untrusted: anything malformed (bad magic, future version,
//! truncation, checksum mismatch, wrong artifact kind, failed restore
//! validation) is rejected with a typed [`PersistError`] and the active
//! model is left untouched.
//!
//! [`load_file`]: ModelRegistry::load_file
//! [`load_dir`]: ModelRegistry::load_dir

use crate::error::PersistError;
use crate::format::{from_bytes, from_shared, Snapshot, SNAPSHOT_EXT};
use crate::map::SharedBytes;
use crate::Result;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, SystemTime};

/// A live artifact that can be rebuilt from its snapshot form.
///
/// The snapshot type carries the raw decoded state; `restore` re-runs the
/// domain validation and rebuilds any derived structures (trait objects,
/// cached operators). Splitting the two keeps [`crate::wire::Decode`]
/// infallible with respect to *domain* rules — wire errors and domain
/// errors stay distinct.
pub trait Restorable: Sized {
    /// The on-disk form of this artifact.
    type Snapshot: Snapshot;

    /// Rebuilds the live artifact; the error string is wrapped in
    /// [`PersistError::Restore`].
    fn restore(snapshot: Self::Snapshot) -> std::result::Result<Self, String>;
}

/// Outcome of a [`ModelRegistry::load_dir`] sweep.
#[derive(Debug)]
pub struct DirLoadReport {
    /// The file that became active, with its new generation number.
    pub installed: Option<(PathBuf, u64)>,
    /// The newest valid file matched the currently active install, so
    /// the sweep was a no-op (generation unchanged) — the steady state
    /// of a polling watcher loop.
    pub unchanged: Option<PathBuf>,
    /// The no-op above was decided from file metadata alone (size +
    /// mtime matched the active install), without reading a single
    /// payload byte — the steady-state watcher poll is O(1) I/O, not
    /// O(file).
    pub stat_fast_path: bool,
    /// Files that failed validation, each with its typed error.
    pub rejected: Vec<(PathBuf, PersistError)>,
    /// Candidate snapshot files considered (sorted by file name).
    pub considered: usize,
}

/// Identity of the bytes behind the active install: file size, mtime
/// (when installed from a file) and FNV-1a content hash. The size+mtime
/// pair powers the stat-only fast path in [`ModelRegistry::load_dir`];
/// the hash is the ground truth when metadata is inconclusive.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SourceId {
    len: u64,
    mtime: Option<SystemTime>,
    hash: u64,
}

/// An atomically hot-swappable slot holding the active model generation.
pub struct ModelRegistry<T> {
    active: RwLock<Option<Arc<T>>>,
    generation: AtomicU64,
    /// Identity of the snapshot behind the active model, when it was
    /// installed from bytes or a file — lets [`ModelRegistry::load_dir`]
    /// skip re-reading (stat fast path) and re-decoding an unchanged
    /// file on every watcher poll. `None` after a direct
    /// [`ModelRegistry::install`].
    active_source: Mutex<Option<SourceId>>,
}

impl<T> std::fmt::Debug for ModelRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("loaded", &self.active().is_some())
            .field("generation", &self.generation())
            .finish()
    }
}

impl<T> Default for ModelRegistry<T> {
    fn default() -> Self {
        ModelRegistry {
            active: RwLock::new(None),
            generation: AtomicU64::new(0),
            active_source: Mutex::new(None),
        }
    }
}

impl<T> ModelRegistry<T> {
    /// An empty registry (no active model yet).
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// The active model, if any — a cheap `Arc` clone; callers hold it
    /// for the duration of one batch so a concurrent swap can never tear
    /// a batch across two models.
    pub fn active(&self) -> Option<Arc<T>> {
        self.active
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Monotone counter incremented by every successful install; 0 means
    /// nothing was ever installed.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Atomically replaces the active model, returning the new generation
    /// number. The previous model is dropped when its last in-flight
    /// batch finishes.
    pub fn install(&self, model: Arc<T>) -> u64 {
        self.install_tagged(model, None)
    }

    fn install_tagged(&self, model: Arc<T>, source: Option<SourceId>) -> u64 {
        // Take both locks in a fixed order so a concurrent load_dir's
        // identity check can never observe a source newer than the slot.
        let mut slot = self.active.write().unwrap_or_else(|p| p.into_inner());
        *self.active_source.lock().unwrap_or_else(|p| p.into_inner()) = source;
        *slot = Some(model);
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(m) = mfod_obs::active() {
            m.registry_swaps.add(1);
            m.registry_generation.set(generation);
        }
        generation
    }
}

impl<T: Restorable> ModelRegistry<T> {
    /// Decodes, restores and installs a snapshot byte buffer.
    pub fn install_bytes(&self, bytes: &[u8]) -> Result<u64> {
        let started = mfod_obs::active().map(|_| std::time::Instant::now());
        let snapshot = from_bytes::<T::Snapshot>(bytes)?;
        let model = T::restore(snapshot).map_err(PersistError::Restore)?;
        let generation = self.install_tagged(
            Arc::new(model),
            Some(SourceId {
                len: bytes.len() as u64,
                mtime: None,
                hash: crate::hash::fnv1a64(bytes),
            }),
        );
        if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
            m.registry_install_time
                .record(t.elapsed().as_nanos() as u64);
        }
        Ok(generation)
    }

    /// Restores and installs a model from already-mapped snapshot bytes.
    fn install_shared(&self, shared: &SharedBytes, source: SourceId) -> Result<u64> {
        let started = mfod_obs::active().map(|_| std::time::Instant::now());
        let snapshot = from_shared::<T::Snapshot>(shared)?;
        let model = T::restore(snapshot).map_err(PersistError::Restore)?;
        let generation = self.install_tagged(Arc::new(model), Some(source));
        if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
            m.registry_install_time
                .record(t.elapsed().as_nanos() as u64);
        }
        Ok(generation)
    }

    /// Memory-maps one snapshot file, validates it (header + table + CRC
    /// over the mapped slice) and hot-swaps the restored model in.
    /// Matrix payloads are served zero-copy out of the mapping wherever
    /// alignment allows; the decoded model owns the keep-alive handles,
    /// so the mapping lives exactly as long as any view into it. The
    /// active model is untouched when the file fails any validation step.
    pub fn install_mapped(&self, path: &Path) -> Result<u64> {
        let meta = std::fs::metadata(path).map_err(|source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let shared = SharedBytes::map(path)?;
        let source = SourceId {
            len: meta.len(),
            mtime: meta.modified().ok(),
            hash: crate::hash::fnv1a64(shared.as_slice()),
        };
        self.install_shared(&shared, source)
    }

    /// Loads one snapshot file and hot-swaps it in — via the mapped
    /// zero-copy path ([`ModelRegistry::install_mapped`]). The active
    /// model is untouched when the file fails any validation step.
    pub fn load_file(&self, path: &Path) -> Result<u64> {
        self.install_mapped(path)
    }

    /// Scans `dir` for `*.mfod` snapshots and installs the newest valid
    /// one, where "newest" is the lexicographically greatest file name —
    /// write snapshots with sortable names (e.g. zero-padded generation
    /// numbers or RFC-3339 timestamps) to get last-writer-wins.
    ///
    /// Invalid files are skipped with their typed errors collected in the
    /// report; they never unseat the active model.
    ///
    /// Re-running `load_dir` on an interval (a polling watcher) is the
    /// intended deployment loop, so an unchanged winner is a no-op: when
    /// the newest valid file's size and mtime match the active install
    /// the sweep skips reading the file entirely (the stat fast path,
    /// [`DirLoadReport::stat_fast_path`] — steady-state polls are O(1)
    /// I/O); when metadata is inconclusive the file is mapped and its
    /// content hash compared, skipping decode/restore on a match. Either
    /// way the file lands in [`DirLoadReport::unchanged`] and the
    /// generation counter is left alone — `generation()` counts real
    /// model changes, not polls. Installs go through the mapped
    /// zero-copy path ([`ModelRegistry::install_mapped`]).
    pub fn load_dir(&self, dir: &Path) -> Result<DirLoadReport> {
        let obs = mfod_obs::active();
        let sweep_started = obs.map(|_| std::time::Instant::now());
        let report = self.load_dir_inner(dir);
        if let (Some(m), Some(t)) = (obs, sweep_started) {
            m.registry_sweeps.add(1);
            m.registry_sweep_time.record_duration(t.elapsed());
            if let Ok(report) = &report {
                m.registry_rejected.add(report.rejected.len() as u64);
                m.registry_unchanged
                    .add(u64::from(report.unchanged.is_some()));
            }
        }
        report
    }

    fn load_dir_inner(&self, dir: &Path) -> Result<DirLoadReport> {
        let entries = std::fs::read_dir(dir).map_err(|source| PersistError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT))
            .collect();
        files.sort();
        let considered = files.len();
        let mut rejected = Vec::new();
        let mut installed = None;
        let mut unchanged = None;
        let mut stat_fast_path = false;
        // newest first; the first valid file wins
        for path in files.into_iter().rev() {
            let io = |source| PersistError::Io {
                path: path.clone(),
                source,
            };
            let meta = match std::fs::metadata(&path) {
                Ok(meta) => meta,
                Err(source) => {
                    rejected.push((path.clone(), io(source)));
                    continue;
                }
            };
            let (len, mtime) = (meta.len(), meta.modified().ok());
            let active = *self.active_source.lock().unwrap_or_else(|p| p.into_inner());
            // Stat fast path: size + mtime match the active install, so
            // the poll skips reading the file entirely. (A same-length
            // in-place overwrite inside one mtime tick would be missed —
            // snapshot deployment is atomic rename of a *new* file, which
            // always moves the mtime.)
            if let Some(active) = active {
                if active.mtime.is_some() && active.mtime == mtime && active.len == len {
                    unchanged = Some(path);
                    stat_fast_path = true;
                    break;
                }
            }
            let shared = match SharedBytes::map(&path) {
                Ok(shared) => shared,
                Err(e) => {
                    rejected.push((path, e));
                    continue;
                }
            };
            // hash over the mapped slice — no buffer copy even when the
            // metadata check was inconclusive
            let hash = crate::hash::fnv1a64(shared.as_slice());
            if active.is_some_and(|a| a.hash == hash) {
                // same content behind fresh metadata (e.g. a re-written
                // identical file): refresh the identity so the next poll
                // takes the stat path
                *self.active_source.lock().unwrap_or_else(|p| p.into_inner()) =
                    Some(SourceId { len, mtime, hash });
                unchanged = Some(path);
                break;
            }
            match self.install_shared(&shared, SourceId { len, mtime, hash }) {
                Ok(generation) => {
                    installed = Some((path, generation));
                    break;
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Ok(DirLoadReport {
            installed,
            unchanged,
            stat_fast_path,
            rejected,
            considered,
        })
    }
}

/// Shared stop flag of a [`WatchHandle`]: the watcher thread waits on the
/// condvar between polls, so a stop request interrupts the sleep
/// immediately instead of after the current interval.
type StopSignal = Arc<(Mutex<bool>, Condvar)>;

/// Handle to a background directory watcher started by
/// [`ModelRegistry::watch_dir`]. Dropping the handle (or calling
/// [`WatchHandle::stop`]) signals the watcher thread and joins it.
pub struct WatchHandle {
    stop: StopSignal,
    polls: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchHandle")
            .field("polls", &self.polls())
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl WatchHandle {
    /// Number of completed `load_dir` sweeps so far (hash-skipped no-op
    /// polls included; read [`ModelRegistry::generation`] for how many of
    /// them actually deployed a new model).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Acquire)
    }

    /// Signals the watcher to stop and joins its thread. Any poll already
    /// in flight finishes first; a sleeping watcher wakes immediately.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        let (flag, signal) = &*self.stop;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
        signal.notify_all();
        let _ = thread.join();
    }
}

impl Drop for WatchHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: Restorable + Send + Sync + 'static> ModelRegistry<T> {
    /// Starts a background thread that re-runs
    /// [`ModelRegistry::load_dir`] on `dir` every `interval` — the
    /// push-free deployment loop: an operator drops a new `*.mfod`
    /// snapshot into the directory and the next poll hot-swaps it in,
    /// with no registry call from the serving path.
    ///
    /// Polling is cheap in the steady state: an unchanged newest file
    /// stat-matches the active install (size + mtime) and the sweep ends
    /// without reading a single payload byte
    /// ([`DirLoadReport::stat_fast_path`]), so watcher polls are O(1)
    /// I/O and `generation()` keeps counting real deployments, not
    /// polls. Sweep
    /// errors (e.g. the directory briefly missing during a deploy) are
    /// swallowed and retried on the next tick — a watcher must survive
    /// transient filesystem states; malformed snapshot *files* were
    /// already non-fatal per the `load_dir` contract.
    ///
    /// The first poll runs immediately. The returned [`WatchHandle`]
    /// owns the thread: dropping it stops the watcher.
    pub fn watch_dir(self: &Arc<Self>, dir: impl Into<PathBuf>, interval: Duration) -> WatchHandle {
        let dir = dir.into();
        let registry = Arc::clone(self);
        let stop: StopSignal = Arc::new((Mutex::new(false), Condvar::new()));
        let polls = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let polls = Arc::clone(&polls);
            std::thread::Builder::new()
                .name("mfod-registry-watch".into())
                .spawn(move || {
                    let (flag, signal) = &*stop;
                    loop {
                        let _ = registry.load_dir(&dir);
                        polls.fetch_add(1, Ordering::AcqRel);
                        let mut stopped = flag.lock().unwrap_or_else(|p| p.into_inner());
                        while !*stopped {
                            let (guard, timeout) = signal
                                .wait_timeout(stopped, interval)
                                .unwrap_or_else(|p| p.into_inner());
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                        }
                        if *stopped {
                            return;
                        }
                    }
                })
                .expect("failed to spawn registry watcher")
        };
        WatchHandle {
            stop,
            polls,
            thread: Some(thread),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{save, to_bytes};
    use crate::wire::{Decode, Decoder, Encode, Encoder};

    #[derive(Debug, Clone, PartialEq)]
    struct WeightsSnapshot {
        w: Vec<f64>,
    }

    impl Encode for WeightsSnapshot {
        fn encode(&self, w: &mut Encoder) {
            self.w.encode(w);
        }
    }

    impl Decode for WeightsSnapshot {
        fn decode(r: &mut Decoder<'_>) -> Result<Self> {
            Ok(WeightsSnapshot { w: Vec::decode(r)? })
        }
    }

    impl Snapshot for WeightsSnapshot {
        const KIND: u32 = 0x77;
        const NAME: &'static str = "weights";
    }

    /// A "live" model whose restore validates finiteness.
    #[derive(Debug, PartialEq)]
    struct Weights {
        w: Vec<f64>,
    }

    impl Restorable for Weights {
        type Snapshot = WeightsSnapshot;
        fn restore(s: WeightsSnapshot) -> std::result::Result<Self, String> {
            if !s.w.iter().all(|v| v.is_finite()) {
                return Err("weights must be finite".into());
            }
            Ok(Weights { w: s.w })
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mfod-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_registry_has_no_active_model() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        assert!(reg.active().is_none());
        assert_eq!(reg.generation(), 0);
        assert!(format!("{reg:?}").contains("generation"));
    }

    #[test]
    fn install_swaps_and_bumps_generation() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let g1 = reg.install(Arc::new(Weights { w: vec![1.0] }));
        assert_eq!(g1, 1);
        let held = reg.active().unwrap(); // an in-flight batch's handle
        let g2 = reg.install(Arc::new(Weights { w: vec![2.0] }));
        assert_eq!(g2, 2);
        // the in-flight handle still sees the old model; new callers the new
        assert_eq!(held.w, vec![1.0]);
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
    }

    #[test]
    fn install_bytes_validates_and_restores() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let ok = to_bytes(&WeightsSnapshot { w: vec![3.0, 4.0] });
        reg.install_bytes(&ok).unwrap();
        assert_eq!(reg.active().unwrap().w, vec![3.0, 4.0]);
        // domain validation runs on restore
        let bad = to_bytes(&WeightsSnapshot {
            w: vec![f64::INFINITY],
        });
        assert!(matches!(
            reg.install_bytes(&bad),
            Err(PersistError::Restore(_))
        ));
        // wire corruption is typed and leaves the active model alone
        let mut corrupt = ok.clone();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        assert!(reg.install_bytes(&corrupt).is_err());
        assert_eq!(reg.active().unwrap().w, vec![3.0, 4.0]);
        assert_eq!(reg.generation(), 1);
    }

    #[test]
    fn load_dir_prefers_newest_valid_and_reports_rejects() {
        let dir = tmpdir("dir");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        // newest file is corrupt: the registry must fall back to gen-002
        let mut corrupt = to_bytes(&WeightsSnapshot { w: vec![9.0] });
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xAA;
        std::fs::write(dir.join("gen-003.mfod"), &corrupt).unwrap();
        // non-snapshot files are ignored entirely
        std::fs::write(dir.join("README.txt"), b"not a model").unwrap();

        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let report = reg.load_dir(&dir).unwrap();
        assert_eq!(report.considered, 3);
        assert_eq!(report.rejected.len(), 1);
        assert!(report.rejected[0].0.ends_with("gen-003.mfod"));
        let (winner, generation) = report.installed.as_ref().unwrap();
        assert!(winner.ends_with("gen-002.mfod"));
        assert_eq!(*generation, 1);
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_skips_unchanged_active_bytes() {
        let dir = tmpdir("unchanged");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let first = reg.load_dir(&dir).unwrap();
        assert!(first.installed.is_some());
        assert!(first.unchanged.is_none());
        assert_eq!(reg.generation(), 1);
        // watcher steady state: same file, same bytes → no-op
        for _ in 0..3 {
            let poll = reg.load_dir(&dir).unwrap();
            assert!(poll.installed.is_none());
            assert!(poll
                .unchanged
                .as_ref()
                .is_some_and(|p| p.ends_with("gen-001.mfod")));
            assert_eq!(reg.generation(), 1, "polls must not bump the generation");
        }
        // a genuinely new file still swaps
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        let swap = reg.load_dir(&dir).unwrap();
        assert!(swap.installed.is_some());
        assert_eq!(reg.generation(), 2);
        // a direct install (no bytes) clears the hash, so the next poll
        // conservatively re-installs from disk rather than assuming
        reg.install(Arc::new(Weights { w: vec![9.0] }));
        assert_eq!(reg.generation(), 3);
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.installed.is_some());
        assert_eq!(reg.generation(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn steady_state_polls_take_the_stat_fast_path() {
        let dir = tmpdir("statfast");
        let path = dir.join("gen-001.mfod");
        save(&WeightsSnapshot { w: vec![1.0, 2.0] }, &path).unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let first = reg.load_dir(&dir).unwrap();
        assert!(first.installed.is_some());
        assert!(!first.stat_fast_path);
        // second poll: size + mtime match — decided without reading bytes
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.unchanged.is_some());
        assert!(poll.stat_fast_path, "steady-state poll must be stat-only");
        // re-write identical content: mtime moves, hash still matches —
        // one hashing poll, then the stat path re-arms
        std::thread::sleep(Duration::from_millis(20));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let rehash = reg.load_dir(&dir).unwrap();
        assert!(rehash.unchanged.is_some());
        if !rehash.stat_fast_path {
            let again = reg.load_dir(&dir).unwrap();
            assert!(again.unchanged.is_some());
            assert!(
                again.stat_fast_path,
                "identity must refresh after a re-hash"
            );
        }
        assert_eq!(reg.generation(), 1, "no-op polls never bump the generation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_mapped_swaps_from_a_mapped_file() {
        let dir = tmpdir("mapped");
        let path = dir.join("gen-001.mfod");
        save(&WeightsSnapshot { w: vec![7.0, 8.0] }, &path).unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let generation = reg.install_mapped(&path).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(reg.active().unwrap().w, vec![7.0, 8.0]);
        // the mapped install arms the stat fast path for the watcher loop
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.unchanged.is_some());
        assert!(poll.stat_fast_path);
        // corrupt file: typed error, active model untouched
        let mut corrupt = std::fs::read(&path).unwrap();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        let bad = dir.join("gen-002.mfod");
        std::fs::write(&bad, &corrupt).unwrap();
        assert!(reg.install_mapped(&bad).is_err());
        assert_eq!(reg.active().unwrap().w, vec![7.0, 8.0]);
        assert!(matches!(
            reg.install_mapped(&dir.join("missing.mfod")),
            Err(PersistError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_with_no_valid_files_installs_nothing() {
        let dir = tmpdir("empty");
        std::fs::write(dir.join("junk.mfod"), b"garbage").unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let report = reg.load_dir(&dir).unwrap();
        assert!(report.installed.is_none());
        assert_eq!(report.rejected.len(), 1);
        assert!(reg.active().is_none());
        // a missing directory is a typed io error
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(reg.load_dir(&dir), Err(PersistError::Io { .. })));
    }

    #[test]
    fn watcher_hot_swaps_new_snapshots_and_stops_cleanly() {
        let dir = tmpdir("watch");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        let handle = reg.watch_dir(&dir, Duration::from_millis(5));
        // the first (immediate) poll installs generation 1
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while reg.generation() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 1, "watcher must install the snapshot");
        assert_eq!(reg.active().unwrap().w, vec![1.0]);
        // steady-state polls are hash-skipped no-ops
        let polled = handle.polls();
        while handle.polls() < polled + 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 1, "no-op polls must not bump generation");
        // a new snapshot lands: the next poll hot-swaps, hands-free
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        while reg.generation() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 2, "watcher must pick up the new file");
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
        assert!(format!("{handle:?}").contains("polls"));
        // stop joins; no further polls land afterwards
        handle.stop();
        let polls_after_stop = {
            // re-create a handle-less count by watching generation: a
            // third snapshot must NOT be installed once stopped
            save(&WeightsSnapshot { w: vec![3.0] }, &dir.join("gen-003.mfod")).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            reg.generation()
        };
        assert_eq!(polls_after_stop, 2, "a stopped watcher must not swap");
        // a watcher on a missing directory survives and keeps polling
        let missing = dir.join("not-there");
        let lost = reg.watch_dir(&missing, Duration::from_millis(5));
        while lost.polls() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(lost.polls() >= 2, "sweep errors must not kill the watcher");
        drop(lost); // drop also stops
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_during_swaps_never_tear() {
        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        reg.install(Arc::new(Weights { w: vec![0.0; 4] }));
        std::thread::scope(|scope| {
            let writer = {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for g in 1..50u64 {
                        reg.install(Arc::new(Weights {
                            w: vec![g as f64; 4],
                        }));
                    }
                })
            };
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let m = reg.active().unwrap();
                        // a model is always internally consistent
                        assert!(m.w.iter().all(|&v| v == m.w[0]));
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(reg.generation(), 50);
    }
}
