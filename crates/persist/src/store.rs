//! Crash-consistent **model store**: transactional promotion, startup
//! recovery, one-call rollback, and an `fsck`-style verifier over a
//! watch directory.
//!
//! ## Layout
//!
//! ```text
//! <dir>/
//!   gen-000001.mfod     snapshot files, one per promoted generation
//!   gen-000002.mfod     (zero-padded so lexicographic == numeric order,
//!   ...                  which is what ModelRegistry::load_dir installs)
//!   store.manifest      catalog checkpoint (MFOD container, KIND 6)
//!   deploy.log          append-only deployment log (source of truth)
//!   quarantine/         torn/uncommitted artifacts, moved, never deleted
//! ```
//!
//! The metadata files deliberately avoid the `.mfod` extension so a
//! registry watching the same directory never tries to install them.
//!
//! ## Durability contract
//!
//! [`ModelStore::promote_bytes`] runs the four-step protocol:
//!
//! 1. **write snapshot** — [`crate::format::save_bytes`]: unique temp,
//!    fsync(file), rename, fsync(dir). A kill before this returns leaves
//!    at worst a stray temp (quarantined on recovery).
//! 2. **append intent** — [`crate::wal::append_record`] + fsync. A kill
//!    here leaves a durable snapshot with no intent → orphan,
//!    quarantined.
//! 3. **append commit** — the generation becomes the committed truth
//!    the moment this record's fsync returns. A kill between intent and
//!    commit leaves an uncommitted intent → snapshot quarantined.
//! 4. **checkpoint manifest** — rewrite `store.manifest` atomically.
//!    A kill here loses nothing: recovery rebuilds the checkpoint from
//!    the log.
//!
//! [`ModelStore::open`] replays the log, quarantines every torn log
//! tail, stray temp, orphan and uncommitted snapshot (moved into
//! `quarantine/`, never deleted), validates the active generation's
//! bytes hash-first, falls back down the committed chain when the
//! active artifact is damaged, and rewrites the checkpoint. Recovery is
//! idempotent: opening twice yields the same state as opening once.

use crate::error::PersistError;
use crate::format::{save, to_bytes, Snapshot, SnapshotReader, SNAPSHOT_EXT, TMP_INFIX};
use crate::hash::fnv1a64;
use crate::manifest::{Manifest, ManifestEntry};
use crate::registry::{ModelRegistry, Restorable};
use crate::wal::{append_record, replay, LogRecord};
use crate::Result;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the manifest checkpoint (not `.mfod`, so directory
/// sweeps skip it).
pub const MANIFEST_FILE: &str = "store.manifest";
/// File name of the append-only deployment log.
pub const DEPLOY_LOG_FILE: &str = "deploy.log";
/// Subdirectory quarantined artifacts are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Snapshot file name for a generation: zero-padded so lexicographic
/// order is numeric order (what `load_dir` keys "newest" on).
pub fn generation_file(generation: u64) -> String {
    format!("gen-{generation:06}.{SNAPSHOT_EXT}")
}

/// Why an artifact was moved to `quarantine/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Snapshot had a logged intent but no commit marker.
    UncommittedIntent,
    /// Snapshot file with no intent in the log at all.
    Orphan,
    /// A crashed writer's temp file.
    StrayTemp,
    /// Committed snapshot whose bytes no longer match the manifest
    /// (hash/length mismatch or unreadable container).
    Damaged(String),
    /// Bytes past the last valid deployment-log record.
    TornLogTail(String),
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::UncommittedIntent => write!(f, "uncommitted intent"),
            QuarantineReason::Orphan => write!(f, "orphan snapshot (no intent)"),
            QuarantineReason::StrayTemp => write!(f, "stray writer temp"),
            QuarantineReason::Damaged(why) => write!(f, "damaged committed snapshot: {why}"),
            QuarantineReason::TornLogTail(why) => write!(f, "torn deploy-log tail: {why}"),
        }
    }
}

/// What [`ModelStore::open`] found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Valid deployment-log records replayed.
    pub replayed_records: usize,
    /// Committed generations whose snapshot survived validation.
    pub committed: Vec<u64>,
    /// The generation now active, if any survived.
    pub active: Option<u64>,
    /// Artifacts moved into `quarantine/`, with why.
    pub quarantined: Vec<(PathBuf, QuarantineReason)>,
    /// Whether a torn log tail was copied aside and truncated.
    pub torn_log_tail: bool,
    /// Whether the active generation had to fall back past a damaged
    /// snapshot to an older committed one.
    pub fell_back: bool,
}

/// One problem found by [`ModelStore::fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// A manifest entry's file is missing from the directory.
    MissingFile {
        /// The committed generation affected.
        generation: u64,
        /// The file the manifest expected.
        file: String,
    },
    /// A file's bytes hash to something other than the manifest says.
    HashMismatch {
        /// The generation affected.
        generation: u64,
        /// The file checked.
        file: String,
        /// Hash recorded at promotion.
        expected: u64,
        /// Hash of the bytes on disk now.
        actual: u64,
    },
    /// A file's length differs from the manifest record.
    LengthMismatch {
        /// The generation affected.
        generation: u64,
        /// The file checked.
        file: String,
        /// Length recorded at promotion.
        expected: u64,
        /// Length on disk now.
        actual: u64,
    },
    /// A file no longer parses as an MFOD container.
    BadContainer {
        /// The file checked.
        file: String,
        /// The typed parse error, stringified.
        error: String,
    },
    /// A `.mfod` file in the directory that no manifest entry names.
    Orphan {
        /// The unexpected file.
        file: String,
    },
    /// A crashed writer's temp file.
    StrayTemp {
        /// The temp file found.
        file: String,
    },
    /// The log holds an intent with no matching commit.
    UncommittedIntent {
        /// The intended-but-never-committed generation.
        generation: u64,
    },
    /// Bytes past the last valid deployment-log record.
    TornLogTail {
        /// Offset where the valid prefix ends.
        offset: u64,
        /// What failed to parse.
        reason: String,
    },
    /// The manifest checkpoint disagrees with the log-derived state.
    ManifestMismatch {
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// The manifest's active generation has no usable snapshot.
    ActiveMissing {
        /// The active generation with no valid bytes behind it.
        generation: u64,
    },
}

impl std::fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckIssue::MissingFile { generation, file } => {
                write!(f, "generation {generation}: file {file} missing")
            }
            FsckIssue::HashMismatch {
                generation,
                file,
                expected,
                actual,
            } => write!(
                f,
                "generation {generation}: {file} hash {actual:#018X}, manifest says {expected:#018X}"
            ),
            FsckIssue::LengthMismatch {
                generation,
                file,
                expected,
                actual,
            } => write!(
                f,
                "generation {generation}: {file} is {actual} bytes, manifest says {expected}"
            ),
            FsckIssue::BadContainer { file, error } => {
                write!(f, "{file}: container invalid: {error}")
            }
            FsckIssue::Orphan { file } => write!(f, "{file}: no manifest entry"),
            FsckIssue::StrayTemp { file } => write!(f, "{file}: stray writer temp"),
            FsckIssue::UncommittedIntent { generation } => {
                write!(f, "generation {generation}: intent without commit")
            }
            FsckIssue::TornLogTail { offset, reason } => {
                write!(f, "deploy log torn at offset {offset}: {reason}")
            }
            FsckIssue::ManifestMismatch { detail } => {
                write!(f, "manifest checkpoint diverges from log: {detail}")
            }
            FsckIssue::ActiveMissing { generation } => {
                write!(f, "active generation {generation} has no valid snapshot")
            }
        }
    }
}

/// Outcome of an [`ModelStore::fsck`] walk.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Generations whose file, length, hash and container all check out.
    pub clean: Vec<u64>,
    /// Every problem found, in walk order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// No issues at all?
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Log-derived deployment state: the durable truth after a replay.
#[derive(Debug, Default)]
struct LogState {
    /// Every logged intent by generation.
    intents: BTreeMap<u64, ManifestEntry>,
    /// Generations with a commit marker, in commit order.
    committed: Vec<u64>,
    /// Active generation after the final commit/rollback record.
    active: Option<u64>,
}

fn derive_state(records: &[LogRecord]) -> LogState {
    let mut state = LogState::default();
    for record in records {
        match record {
            LogRecord::Intent(entry) => {
                state.intents.insert(entry.generation, entry.clone());
            }
            LogRecord::Commit { generation } => {
                if !state.committed.contains(generation) {
                    state.committed.push(*generation);
                }
                state.active = Some(*generation);
            }
            LogRecord::Rollback { to, .. } => {
                // generation 0 is the "nothing left to serve" sentinel
                // written when recovery finds no valid fallback
                state.active = (*to != 0).then_some(*to);
            }
        }
    }
    state
}

/// A crash-consistent model store over one directory.
///
/// All mutation goes through the deployment log first, so any SIGKILL
/// leaves a state [`ModelStore::open`] recovers from; see the module
/// docs for the step-by-step contract.
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl ModelStore {
    /// Opens (and if necessary recovers) the store at `dir`, creating
    /// the directory if missing. Never deletes data: suspect artifacts
    /// move to `quarantine/`, torn log tails are copied there before
    /// the log is truncated.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(ModelStore, RecoveryReport)> {
        let dir = dir.into();
        let io = |path: &Path| {
            let path = path.to_path_buf();
            move |source| PersistError::Io {
                path: path.clone(),
                source,
            }
        };
        std::fs::create_dir_all(&dir).map_err(io(&dir))?;
        let mut report = RecoveryReport::default();

        // 1. Replay the log; quarantine + truncate any torn tail.
        let log_path = dir.join(DEPLOY_LOG_FILE);
        let mut rep = replay(&log_path)?;
        if let Some(torn) = rep.torn.take() {
            let bytes = std::fs::read(&log_path).map_err(io(&log_path))?;
            let qdir = dir.join(QUARANTINE_DIR);
            std::fs::create_dir_all(&qdir).map_err(io(&qdir))?;
            let tail_name = format!("deploy.log.tail-{}", torn.offset);
            let tail_path = qdir.join(&tail_name);
            std::fs::write(&tail_path, &bytes[torn.offset as usize..]).map_err(io(&tail_path))?;
            let keep = &bytes[..torn.offset as usize];
            std::fs::write(&log_path, keep).map_err(io(&log_path))?;
            std::fs::File::open(&log_path)
                .and_then(|f| f.sync_all())
                .map_err(io(&log_path))?;
            report.torn_log_tail = true;
            report
                .quarantined
                .push((tail_path, QuarantineReason::TornLogTail(torn.reason)));
        }
        report.replayed_records = rep.records.len();
        let state = derive_state(&rep.records);

        // 2. Sweep the directory: quarantine stray temps, orphans and
        //    uncommitted snapshots. Committed files stay for validation.
        let committed: Vec<u64> = state.committed.clone();
        let committed_files: Vec<String> = committed
            .iter()
            .filter_map(|g| state.intents.get(g).map(|e| e.file.clone()))
            .collect();
        let entries = std::fs::read_dir(&dir).map_err(io(&dir))?;
        let quarantine = |path: &Path, reason: QuarantineReason, rpt: &mut RecoveryReport| {
            let qdir = dir.join(QUARANTINE_DIR);
            if let Err(e) = std::fs::create_dir_all(&qdir) {
                return Err(PersistError::Io {
                    path: qdir,
                    source: e,
                });
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            // never overwrite earlier quarantined evidence
            let mut dest = qdir.join(&name);
            let mut bump = 0u32;
            while dest.exists() {
                bump += 1;
                dest = qdir.join(format!("{name}.{bump}"));
            }
            std::fs::rename(path, &dest).map_err(io(path))?;
            if let Some(m) = mfod_obs::active() {
                m.store_quarantined.add(1);
                mfod_obs::journal::instant("store.quarantine");
            }
            rpt.quarantined.push((dest, reason));
            Ok(())
        };
        for entry in entries {
            let entry = entry.map_err(io(&dir))?;
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(TMP_INFIX) {
                quarantine(&path, QuarantineReason::StrayTemp, &mut report)?;
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXT) {
                continue; // store.manifest, deploy.log, unrelated files
            }
            if committed_files.contains(&name) {
                continue;
            }
            let intended = state.intents.values().any(|e| e.file == name);
            let reason = if intended {
                QuarantineReason::UncommittedIntent
            } else {
                QuarantineReason::Orphan
            };
            quarantine(&path, reason, &mut report)?;
        }

        // 3. Validate committed snapshots hash-first; quarantine damage
        //    and walk the active pointer back down the committed chain.
        let mut valid: Vec<u64> = Vec::new();
        for &generation in &committed {
            let Some(entry) = state.intents.get(&generation) else {
                continue; // commit without intent: nothing to validate
            };
            let path = dir.join(&entry.file);
            match validate_entry_bytes(&path, entry) {
                Ok(()) => valid.push(generation),
                Err(why) => {
                    if path.exists() {
                        quarantine(&path, QuarantineReason::Damaged(why), &mut report)?;
                    }
                }
            }
        }
        let mut active = state.active.filter(|g| valid.contains(g));
        if active.is_none() && state.active.is_some() {
            // fall back to the newest valid committed generation, and
            // record the re-point in the log so the log-derived active
            // matches what this recovery decided (0 = nothing left)
            active = valid.iter().copied().max();
            report.fell_back = true;
            append_record(
                &log_path,
                &LogRecord::Rollback {
                    from: state.active.unwrap_or(0),
                    to: active.unwrap_or(0),
                },
            )?;
        }

        // 4. Rebuild the in-memory manifest from the log-derived state
        //    and checkpoint it durably.
        let mut manifest = Manifest::new();
        for &generation in &valid {
            if let Some(entry) = state.intents.get(&generation) {
                manifest.upsert(entry.clone());
            }
        }
        manifest.active = active;
        let store = ModelStore { dir, manifest };
        store.checkpoint()?;
        report.committed = valid;
        report.active = active;
        if let Some(m) = mfod_obs::active() {
            m.store_recoveries.add(1);
            mfod_obs::journal::instant("store.recover");
        }
        Ok((store, report))
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live catalog (checkpointed to `store.manifest`).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The active committed generation, if any.
    pub fn active_generation(&self) -> Option<u64> {
        self.manifest.active
    }

    /// Absolute path of a generation's snapshot file, if cataloged.
    pub fn generation_path(&self, generation: u64) -> Option<PathBuf> {
        self.manifest
            .entry(generation)
            .map(|e| self.dir.join(&e.file))
    }

    /// Atomically rewrites the manifest checkpoint.
    fn checkpoint(&self) -> Result<()> {
        save(&self.manifest, &self.dir.join(MANIFEST_FILE))
    }

    /// Promotes already-encoded snapshot bytes as the next generation:
    /// write-snapshot → fsync(file+dir) → append intent → commit marker
    /// → checkpoint. Returns the catalog entry on success. On any error
    /// the store's committed truth is unchanged — a later
    /// [`ModelStore::open`] quarantines whatever half-promotion is on
    /// disk. Crash point [`mfod_faultline::points::STORE_COMMIT`] sits
    /// between intent and commit.
    ///
    /// The bytes are validated *before* anything touches disk: committed
    /// means servable, so a non-MFOD blob or a container of the wrong
    /// kind is rejected with a typed error and zero side effects.
    pub fn promote_bytes(
        &mut self,
        bytes: &[u8],
        kind: u32,
        config_fingerprint: u64,
        tag: &str,
    ) -> Result<ManifestEntry> {
        let reader = SnapshotReader::parse(bytes)?;
        if reader.kind() != kind {
            return Err(PersistError::WrongKind {
                got: reader.kind(),
                expected: kind,
            });
        }
        let generation = self.manifest.next_generation();
        let file = generation_file(generation);
        let entry = ManifestEntry {
            generation,
            file: file.clone(),
            kind,
            content_hash: fnv1a64(bytes),
            len: bytes.len() as u64,
            config_fingerprint,
            parent: self.manifest.active,
            tag: tag.to_string(),
        };
        // 1. snapshot durable (fsync file + dir inside save_bytes)
        crate::format::save_bytes(&self.dir.join(&file), bytes)?;
        let log_path = self.dir.join(DEPLOY_LOG_FILE);
        // 2. intent durable
        append_record(&log_path, &LogRecord::Intent(entry.clone()))?;
        // 3. commit marker — the generation exists the moment this lands
        if mfod_faultline::should_fire(mfod_faultline::points::STORE_COMMIT) {
            mfod_faultline::park_if_requested(mfod_faultline::points::STORE_COMMIT);
            return Err(PersistError::Io {
                path: log_path,
                source: std::io::Error::other("injected fault: store.commit"),
            });
        }
        append_record(&log_path, &LogRecord::Commit { generation })?;
        // 4. checkpoint (recovery would rebuild it from the log anyway)
        self.manifest.upsert(entry.clone());
        self.manifest.active = Some(generation);
        self.checkpoint()?;
        if let Some(m) = mfod_obs::active() {
            m.store_promotions.add(1);
            mfod_obs::journal::instant("store.promote");
        }
        Ok(entry)
    }

    /// Promotes a typed artifact ([`crate::format::to_bytes`] +
    /// [`ModelStore::promote_bytes`]).
    pub fn promote<T: Snapshot>(
        &mut self,
        value: &T,
        config_fingerprint: u64,
        tag: &str,
    ) -> Result<ManifestEntry> {
        self.promote_bytes(&to_bytes(value), T::KIND, config_fingerprint, tag)
    }

    /// Re-points the active generation at a prior committed one: one
    /// log append plus a checkpoint, no snapshot bytes touched. The
    /// target must be cataloged and its bytes must still validate.
    pub fn rollback(&mut self, generation: u64) -> Result<ManifestEntry> {
        let entry = self.manifest.entry(generation).cloned().ok_or_else(|| {
            PersistError::Malformed(format!(
                "rollback target generation {generation} is not in the catalog"
            ))
        })?;
        let path = self.dir.join(&entry.file);
        validate_entry_bytes(&path, &entry).map_err(PersistError::Malformed)?;
        let from = self.manifest.active.unwrap_or(0);
        append_record(
            &self.dir.join(DEPLOY_LOG_FILE),
            &LogRecord::Rollback {
                from,
                to: generation,
            },
        )?;
        self.manifest.active = Some(generation);
        self.checkpoint()?;
        if let Some(m) = mfod_obs::active() {
            m.store_rollbacks.add(1);
            mfod_obs::journal::instant("store.rollback");
        }
        Ok(entry)
    }

    /// Installs the active generation into `registry` via the mapped
    /// zero-copy path. Returns the installed **store** generation, or
    /// `None` when the store has nothing committed.
    pub fn install_active<T: Restorable>(
        &self,
        registry: &ModelRegistry<T>,
    ) -> Result<Option<u64>> {
        let Some(entry) = self.manifest.active_entry() else {
            return Ok(None);
        };
        registry.install_mapped(&self.dir.join(&entry.file))?;
        Ok(Some(entry.generation))
    }

    /// Verifies the whole directory against the catalog and log without
    /// mutating anything: re-hashes every cataloged artifact, re-parses
    /// containers, and reports orphans, stray temps, uncommitted
    /// intents, torn log tails and checkpoint divergence — every
    /// problem typed, never a panic.
    pub fn fsck(&self) -> Result<FsckReport> {
        fsck_dir(&self.dir)
    }
}

/// Hash-first validation of one cataloged snapshot file: length, FNV
/// content hash, then container parse. Returns a human-readable reason
/// on the first failure.
fn validate_entry_bytes(path: &Path, entry: &ManifestEntry) -> std::result::Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    if bytes.len() as u64 != entry.len {
        return Err(format!(
            "length {} != manifest length {}",
            bytes.len(),
            entry.len
        ));
    }
    let actual = fnv1a64(&bytes);
    if actual != entry.content_hash {
        return Err(format!(
            "content hash {actual:#018X} != manifest hash {:#018X}",
            entry.content_hash
        ));
    }
    let reader = SnapshotReader::parse(&bytes).map_err(|e| format!("container invalid: {e}"))?;
    if reader.kind() != entry.kind {
        return Err(format!(
            "container kind {} != manifest kind {}",
            reader.kind(),
            entry.kind
        ));
    }
    Ok(())
}

/// [`ModelStore::fsck`] as a free function — verifies any directory
/// (the store need not be open, so an operator can point it at a copy).
pub fn fsck_dir(dir: &Path) -> Result<FsckReport> {
    let io = |path: &Path| {
        let path = path.to_path_buf();
        move |source| PersistError::Io {
            path: path.clone(),
            source,
        }
    };
    let mut report = FsckReport::default();

    // log first: its state is the reference everything else checks against
    let rep = replay(&dir.join(DEPLOY_LOG_FILE))?;
    if let Some(torn) = &rep.torn {
        report.issues.push(FsckIssue::TornLogTail {
            offset: torn.offset,
            reason: torn.reason.clone(),
        });
    }
    let state = derive_state(&rep.records);
    for (&generation, entry) in &state.intents {
        // an uncommitted intent is live evidence only while its snapshot
        // is still in the directory; once recovery has quarantined the
        // file, the intent record is just append-only history
        if !state.committed.contains(&generation) && dir.join(&entry.file).exists() {
            report
                .issues
                .push(FsckIssue::UncommittedIntent { generation });
        }
    }

    // checkpoint vs log-derived state
    let manifest_path = dir.join(MANIFEST_FILE);
    let checkpoint: Option<Manifest> = if manifest_path.exists() {
        match crate::format::load::<Manifest>(&manifest_path) {
            Ok(m) => Some(m),
            Err(e) => {
                report.issues.push(FsckIssue::BadContainer {
                    file: MANIFEST_FILE.to_string(),
                    error: e.to_string(),
                });
                None
            }
        }
    } else {
        None
    };
    if let Some(cp) = &checkpoint {
        if cp.active != state.active {
            report.issues.push(FsckIssue::ManifestMismatch {
                detail: format!(
                    "checkpoint active {:?} != log-derived active {:?}",
                    cp.active, state.active
                ),
            });
        }
        for entry in &cp.entries {
            match state.intents.get(&entry.generation) {
                Some(logged) if logged == entry => {}
                Some(_) => report.issues.push(FsckIssue::ManifestMismatch {
                    detail: format!(
                        "checkpoint entry for generation {} differs from logged intent",
                        entry.generation
                    ),
                }),
                None => report.issues.push(FsckIssue::ManifestMismatch {
                    detail: format!(
                        "checkpoint entry for generation {} has no logged intent",
                        entry.generation
                    ),
                }),
            }
        }
    }

    // reference catalog for file checks: the checkpoint when valid,
    // else the committed subset of the log
    let mut catalog: BTreeMap<u64, ManifestEntry> = BTreeMap::new();
    match &checkpoint {
        Some(cp) => {
            for e in &cp.entries {
                catalog.insert(e.generation, e.clone());
            }
        }
        None => {
            for g in &state.committed {
                if let Some(e) = state.intents.get(g) {
                    catalog.insert(*g, e.clone());
                }
            }
        }
    }

    // walk the directory
    let mut present: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io(dir))? {
        let entry = entry.map_err(io(dir))?;
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.contains(TMP_INFIX) {
            report.issues.push(FsckIssue::StrayTemp { file: name });
            continue;
        }
        if entry.path().extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT) {
            present.push(name);
        }
    }
    present.sort();
    for name in &present {
        let cataloged = catalog.values().find(|e| e.file == *name);
        let intended = state.intents.values().any(|e| e.file == *name);
        if cataloged.is_none() && !intended {
            report.issues.push(FsckIssue::Orphan { file: name.clone() });
        }
    }

    // re-hash every cataloged artifact
    for (generation, entry) in &catalog {
        let path = dir.join(&entry.file);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                report.issues.push(FsckIssue::MissingFile {
                    generation: *generation,
                    file: entry.file.clone(),
                });
                continue;
            }
        };
        let mut ok = true;
        if bytes.len() as u64 != entry.len {
            report.issues.push(FsckIssue::LengthMismatch {
                generation: *generation,
                file: entry.file.clone(),
                expected: entry.len,
                actual: bytes.len() as u64,
            });
            ok = false;
        }
        let actual = fnv1a64(&bytes);
        if actual != entry.content_hash {
            report.issues.push(FsckIssue::HashMismatch {
                generation: *generation,
                file: entry.file.clone(),
                expected: entry.content_hash,
                actual,
            });
            ok = false;
        }
        if let Err(e) = SnapshotReader::parse(&bytes) {
            report.issues.push(FsckIssue::BadContainer {
                file: entry.file.clone(),
                error: e.to_string(),
            });
            ok = false;
        }
        if ok {
            report.clean.push(*generation);
        }
    }

    // the active pointer must have a clean snapshot behind it
    let active = checkpoint.as_ref().map_or(state.active, |cp| cp.active);
    if let Some(generation) = active {
        if !report.clean.contains(&generation) {
            report.issues.push(FsckIssue::ActiveMissing { generation });
        }
    }
    if let Some(m) = mfod_obs::active() {
        m.store_fsck_issues.add(report.issues.len() as u64);
        mfod_obs::journal::instant("store.fsck");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Decode, Decoder, Encode, Encoder};
    use mfod_faultline::{points, FaultPlan, FaultRule};

    #[derive(Debug, Clone, PartialEq)]
    struct Weights {
        w: Vec<f64>,
    }

    impl Encode for Weights {
        fn encode(&self, w: &mut Encoder) {
            self.w.encode(w);
        }
    }

    impl Decode for Weights {
        fn decode(r: &mut Decoder<'_>) -> crate::Result<Self> {
            Ok(Weights {
                w: Vec::<f64>::decode(r)?,
            })
        }
    }

    impl Snapshot for Weights {
        const KIND: u32 = 0x57;
        const NAME: &'static str = "weights";
    }

    fn weights(seed: u64) -> Weights {
        Weights {
            w: (0..32).map(|i| (seed as f64) + i as f64 * 0.5).collect(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mfod-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn manifest_state(store: &ModelStore) -> (Option<u64>, Vec<u64>) {
        (
            store.active_generation(),
            store
                .manifest()
                .entries
                .iter()
                .map(|e| e.generation)
                .collect(),
        )
    }

    #[test]
    fn promoting_invalid_bytes_is_rejected_before_any_disk_mutation() {
        let dir = tmpdir("promote-garbage");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        // not a container at all
        assert!(store
            .promote_bytes(b"not a container", 1, 0, "bad")
            .is_err());
        // a valid container of the wrong kind
        let weights_bytes = crate::format::to_bytes(&weights(1));
        assert!(matches!(
            store.promote_bytes(&weights_bytes, 99, 0, "wrong-kind"),
            Err(PersistError::WrongKind { got, expected: 99 }) if got == Weights::KIND
        ));
        // zero side effects: empty catalog, no files, clean fsck
        assert!(store.manifest().entries.is_empty());
        assert_eq!(store.active_generation(), None);
        assert!(!dir.join(generation_file(1)).exists());
        assert!(!dir.join(DEPLOY_LOG_FILE).exists());
        assert!(store.fsck().unwrap().is_clean());
        // and the store still works after the rejections
        store.promote(&weights(1), 0, "good").unwrap();
        assert_eq!(store.active_generation(), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_open_promote_assigns_monotone_generations() {
        let dir = tmpdir("promote");
        let (mut store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, None);
        let e1 = store.promote(&weights(1), 0xC0FFEE, "a").unwrap();
        assert_eq!((e1.generation, e1.parent), (1, None));
        let e2 = store.promote(&weights(2), 0xC0FFEE, "b").unwrap();
        assert_eq!((e2.generation, e2.parent), (2, Some(1)));
        drop(store);
        let (mut store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, Some(2));
        assert_eq!(report.committed, vec![1, 2]);
        assert!(report.quarantined.is_empty());
        let e3 = store.promote(&weights(3), 0xC0FFEE, "c").unwrap();
        assert_eq!((e3.generation, e3.parent), (3, Some(2)));
        // lineage survives in the reloaded catalog
        assert_eq!(store.manifest().entry(2).unwrap().parent, Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_intent_and_commit_quarantines_the_snapshot() {
        let _g = mfod_faultline::serial_guard();
        let dir = tmpdir("uncommitted");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "ok").unwrap();
        mfod_faultline::install(FaultPlan::new(3).rule(points::STORE_COMMIT, FaultRule::once()));
        let err = store.promote(&weights(2), 1, "doomed").unwrap_err();
        mfod_faultline::disarm();
        assert!(matches!(err, PersistError::Io { .. }), "{err}");
        drop(store);
        let (store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, Some(1));
        assert_eq!(report.committed, vec![1]);
        assert_eq!(report.quarantined.len(), 1);
        let (path, reason) = &report.quarantined[0];
        assert_eq!(*reason, QuarantineReason::UncommittedIntent);
        assert!(path.starts_with(dir.join(QUARANTINE_DIR)), "{path:?}");
        assert!(path.exists(), "quarantined file must be moved, not deleted");
        assert!(!dir.join(generation_file(2)).exists());
        assert!(store.fsck().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_leaves_a_stray_temp_that_recovery_quarantines() {
        let _g = mfod_faultline::serial_guard();
        let dir = tmpdir("stray");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "ok").unwrap();
        mfod_faultline::install(FaultPlan::new(5).rule(points::PERSIST_RENAME, FaultRule::once()));
        let err = store.promote(&weights(2), 1, "doomed").unwrap_err();
        mfod_faultline::disarm();
        assert!(matches!(err, PersistError::Io { .. }), "{err}");
        drop(store);
        let (_, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, Some(1));
        assert!(report
            .quarantined
            .iter()
            .any(|(_, r)| *r == QuarantineReason::StrayTemp));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphans_and_torn_log_tails_are_preserved_in_quarantine() {
        let dir = tmpdir("orphan");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "ok").unwrap();
        // an orphan snapshot nobody promoted, plus torn bytes on the log
        std::fs::write(dir.join("rogue.mfod"), b"not a snapshot").unwrap();
        use std::io::Write as _;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(DEPLOY_LOG_FILE))
            .unwrap();
        log.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop((store, log));
        let (store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, Some(1));
        assert!(report.torn_log_tail);
        assert!(report
            .quarantined
            .iter()
            .any(|(_, r)| *r == QuarantineReason::Orphan));
        let tail = report
            .quarantined
            .iter()
            .find(|(_, r)| matches!(r, QuarantineReason::TornLogTail(_)))
            .expect("torn tail quarantined");
        assert_eq!(std::fs::read(&tail.0).unwrap(), vec![0xAB, 0xCD, 0xEF]);
        // the log itself is clean again, and the store keeps promoting
        assert!(replay(&dir.join(DEPLOY_LOG_FILE)).unwrap().torn.is_none());
        let mut store = store;
        store.promote(&weights(2), 1, "after").unwrap();
        assert!(store.fsck().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_active_generation_falls_back_to_previous_committed() {
        let dir = tmpdir("fallback");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "good").unwrap();
        store.promote(&weights(2), 1, "bad-later").unwrap();
        // flip one payload byte of generation 2 (same length)
        let path = dir.join(generation_file(2));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        drop(store);
        let (store, report) = ModelStore::open(&dir).unwrap();
        assert!(report.fell_back);
        assert_eq!(report.active, Some(1));
        assert_eq!(report.committed, vec![1]);
        assert!(report
            .quarantined
            .iter()
            .any(|(_, r)| matches!(r, QuarantineReason::Damaged(_))));
        assert_eq!(store.active_generation(), Some(1));
        // the fallback was logged, so a recovered store fscks clean
        assert!(store.fsck().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_re_points_without_touching_snapshots_and_survives_reopen() {
        let dir = tmpdir("rollback");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "v1").unwrap();
        store.promote(&weights(2), 1, "v2").unwrap();
        let before = std::fs::read(dir.join(generation_file(1))).unwrap();
        let entry = store.rollback(1).unwrap();
        assert_eq!(entry.generation, 1);
        assert_eq!(store.active_generation(), Some(1));
        assert_eq!(std::fs::read(dir.join(generation_file(1))).unwrap(), before);
        // both generations stay on disk: roll forward works too
        store.rollback(2).unwrap();
        assert_eq!(store.active_generation(), Some(2));
        store.rollback(1).unwrap();
        drop(store);
        let (store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.active, Some(1));
        assert_eq!(store.active_generation(), Some(1));
        // rolling back to an unknown generation is a typed error
        let mut store = store;
        let err = store.rollback(42).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_idempotent() {
        let _g = mfod_faultline::serial_guard();
        let dir = tmpdir("idempotent");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "a").unwrap();
        mfod_faultline::install(FaultPlan::new(11).rule(points::STORE_COMMIT, FaultRule::once()));
        let _ = store.promote(&weights(2), 1, "b");
        mfod_faultline::disarm();
        drop(store);
        let (first, _) = ModelStore::open(&dir).unwrap();
        let first_state = manifest_state(&first);
        let mut listing: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        listing.sort();
        drop(first);
        let (second, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(manifest_state(&second), first_state);
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        let mut relisting: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        relisting.sort();
        assert_eq!(relisting, listing);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_reports_every_mismatch_with_typed_issues_and_never_panics() {
        let dir = tmpdir("fsck");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "a").unwrap();
        store.promote(&weights(2), 1, "b").unwrap();
        store.promote(&weights(3), 1, "c").unwrap();
        assert!(store.fsck().unwrap().is_clean());
        // tamper gen 1 (hash + container), remove gen 2, orphan + temp
        let p1 = dir.join(generation_file(1));
        let mut b1 = std::fs::read(&p1).unwrap();
        let mid = b1.len() / 2;
        b1[mid] ^= 0xFF;
        std::fs::write(&p1, &b1).unwrap();
        std::fs::rename(dir.join(generation_file(2)), dir.join("elsewhere")).unwrap();
        std::fs::write(dir.join("orphan.mfod"), b"junk").unwrap();
        std::fs::write(dir.join(format!("x{TMP_INFIX}999-0")), b"half").unwrap();
        let report = store.fsck().unwrap();
        assert_eq!(report.clean, vec![3]);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::HashMismatch { generation: 1, .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::BadContainer { .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::MissingFile { generation: 2, .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::Orphan { file } if file == "orphan.mfod")));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::StrayTemp { .. })));
        // every issue renders without panicking
        for issue in &report.issues {
            assert!(!issue.to_string().is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_flags_checkpoint_divergence_and_missing_active() {
        let dir = tmpdir("fsck-manifest");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.promote(&weights(1), 1, "a").unwrap();
        // forge a checkpoint pointing at a generation the log never saw
        let mut forged = store.manifest().clone();
        let mut fake = forged.entries[0].clone();
        fake.generation = 9;
        fake.file = generation_file(9);
        forged.upsert(fake);
        forged.active = Some(9);
        crate::format::save(&forged, &dir.join(MANIFEST_FILE)).unwrap();
        let report = fsck_dir(&dir).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::ManifestMismatch { .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::MissingFile { generation: 9, .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::ActiveMissing { generation: 9 })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_active_threads_the_store_into_the_registry() {
        struct Live(Weights);
        impl Restorable for Live {
            type Snapshot = Weights;
            fn restore(s: Weights) -> std::result::Result<Self, String> {
                Ok(Live(s))
            }
        }
        let dir = tmpdir("install");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        let registry = ModelRegistry::<Live>::new();
        assert_eq!(store.install_active(&registry).unwrap(), None);
        store.promote(&weights(7), 1, "v").unwrap();
        let gen = store.install_active(&registry).unwrap();
        assert_eq!(gen, Some(1));
        assert_eq!(registry.active().unwrap().0, weights(7));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
