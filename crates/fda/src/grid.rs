//! Strictly increasing evaluation grids over a closed interval.

use crate::error::FdaError;
use crate::Result;

/// A strictly increasing set of abscissae `t_1 < t_2 < … < t_m`.
///
/// The paper evaluates every reconstructed sample on "the same regular grid
/// of `T`" (Sec. 4.1); [`Grid::uniform`] builds exactly that. Non-uniform
/// grids are supported because the functional representation makes no
/// assumption on the distribution of the measurement points (Sec. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    points: Vec<f64>,
}

impl Grid {
    /// Builds a grid from explicit points, validating strict monotonicity
    /// and finiteness.
    pub fn new(points: Vec<f64>) -> Result<Self> {
        if points.len() < 2 {
            return Err(FdaError::TooFewPoints {
                got: points.len(),
                need: 2,
            });
        }
        if !points.iter().all(|v| v.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        for w in points.windows(2) {
            if w[0] >= w[1] {
                return Err(FdaError::InvalidAbscissae(format!(
                    "grid must be strictly increasing, found {} >= {}",
                    w[0], w[1]
                )));
            }
        }
        Ok(Grid { points })
    }

    /// Builds a uniform grid of `m >= 2` points spanning `[a, b]` inclusive.
    pub fn uniform(a: f64, b: f64, m: usize) -> Result<Self> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        if m < 2 {
            return Err(FdaError::TooFewPoints { got: m, need: 2 });
        }
        let step = (b - a) / (m - 1) as f64;
        let mut points: Vec<f64> = (0..m).map(|j| a + step * j as f64).collect();
        // guard against rounding drift on the right endpoint
        points[m - 1] = b;
        Ok(Grid { points })
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: grids have at least two points by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the points.
    #[inline]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Left endpoint.
    #[inline]
    pub fn start(&self) -> f64 {
        self.points[0]
    }

    /// Right endpoint.
    #[inline]
    pub fn end(&self) -> f64 {
        *self.points.last().expect("grid is non-empty")
    }

    /// `(start, end)` pair.
    #[inline]
    pub fn domain(&self) -> (f64, f64) {
        (self.start(), self.end())
    }

    /// Iterator over the points.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, f64>> {
        self.points.iter().copied()
    }

    /// Restricts the grid to points inside `[a, b]`; errors if fewer than
    /// two survive.
    pub fn restrict(&self, a: f64, b: f64) -> Result<Grid> {
        Grid::new(
            self.points
                .iter()
                .copied()
                .filter(|&t| t >= a && t <= b)
                .collect(),
        )
    }
}

impl AsRef<[f64]> for Grid {
    fn as_ref(&self) -> &[f64] {
        &self.points
    }
}

impl<'a> IntoIterator for &'a Grid {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_endpoints_exact() {
        let g = Grid::uniform(0.0, 1.0, 85).unwrap();
        assert_eq!(g.len(), 85);
        assert_eq!(g.start(), 0.0);
        assert_eq!(g.end(), 1.0);
        assert_eq!(g.domain(), (0.0, 1.0));
    }

    #[test]
    fn uniform_spacing() {
        let g = Grid::uniform(0.0, 2.0, 5).unwrap();
        assert_eq!(g.points(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Grid::uniform(1.0, 1.0, 5),
            Err(FdaError::InvalidDomain { .. })
        ));
        assert!(matches!(
            Grid::uniform(2.0, 1.0, 5),
            Err(FdaError::InvalidDomain { .. })
        ));
        assert!(matches!(
            Grid::uniform(0.0, 1.0, 1),
            Err(FdaError::TooFewPoints { .. })
        ));
        assert!(matches!(
            Grid::uniform(f64::NAN, 1.0, 5),
            Err(FdaError::NonFinite)
        ));
    }

    #[test]
    fn new_validates_monotonicity() {
        assert!(Grid::new(vec![0.0, 0.5, 0.5, 1.0]).is_err());
        assert!(Grid::new(vec![0.0, -0.5]).is_err());
        assert!(Grid::new(vec![0.0, f64::NAN]).is_err());
        assert!(Grid::new(vec![0.0]).is_err());
        assert!(Grid::new(vec![0.0, 0.3, 0.9]).is_ok());
    }

    #[test]
    fn restrict_keeps_inner_points() {
        let g = Grid::uniform(0.0, 1.0, 11).unwrap();
        let r = g.restrict(0.25, 0.75).unwrap();
        assert_eq!(r.len(), 5);
        assert!((r.start() - 0.3).abs() < 1e-12);
        assert!(g.restrict(0.99, 1.0).is_err()); // only one survivor
    }

    #[test]
    fn iteration() {
        let g = Grid::uniform(0.0, 1.0, 3).unwrap();
        let v: Vec<f64> = (&g).into_iter().collect();
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        assert!(!g.is_empty());
    }
}
