//! The [`Basis`] trait: a finite family of differentiable functions
//! `φ_1 … φ_L` on a closed interval, supporting evaluation of any derivative
//! order and the roughness penalty matrices of Eq. 3 in the paper.

use mfod_linalg::Matrix;

/// A finite basis of real functions on a closed domain `[a, b]`.
///
/// Implementations must be deterministic and thread-safe; evaluation points
/// outside the domain are clamped onto it (functional data are only defined
/// on `T`, and clamping keeps downstream grid arithmetic robust against
/// floating-point drift at the endpoints).
pub trait Basis: Send + Sync {
    /// Number of basis functions `L`.
    fn len(&self) -> usize;

    /// True when the basis contains no functions (never, for valid bases).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The closed domain `[a, b]`.
    fn domain(&self) -> (f64, f64);

    /// Evaluates the `deriv`-th derivative of every basis function at `t`,
    /// writing into `out` (length `len()`).
    ///
    /// `deriv = 0` evaluates the functions themselves.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    fn eval_into(&self, t: f64, deriv: usize, out: &mut [f64]);

    /// Penalty matrix `R_q[j, m] = ∫ D^q φ_j (t) · D^q φ_m (t) dt` over the
    /// domain (positive semi-definite, symmetric).
    fn penalty(&self, q: usize) -> Matrix;

    /// Short human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "basis"
    }

    /// The concrete snapshot form of this basis, when it supports
    /// persistence (see `mfod-persist`).
    ///
    /// The default is `None`: a custom basis simply cannot be written to
    /// a model snapshot until it opts in, and callers surface that as a
    /// typed error at snapshot time ([`crate::snapshot::snapshot_basis`])
    /// rather than silently dropping state. Implementations must return a
    /// snapshot whose [`crate::snapshot::BasisSnapshot::restore`] yields
    /// a basis that evaluates **bit-identically** to `self`.
    fn snapshot(&self) -> Option<crate::snapshot::BasisSnapshot> {
        None
    }

    /// Evaluates the `deriv`-th derivative of all basis functions at `t`
    /// into a fresh vector.
    fn eval(&self, t: f64, deriv: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.eval_into(t, deriv, &mut out);
        out
    }

    /// Builds the `m x L` design matrix `Φ[j, l] = D^deriv φ_l(t_j)`.
    fn design_matrix(&self, ts: &[f64], deriv: usize) -> Matrix {
        let mut out = Matrix::zeros(ts.len(), self.len());
        for (j, &t) in ts.iter().enumerate() {
            self.eval_into(t, deriv, out.row_mut(j));
        }
        out
    }
}

/// Blanket helpers available on trait objects.
impl dyn Basis + '_ {
    /// Evaluates a linear combination `Σ coefs[l] · D^deriv φ_l(t)`.
    ///
    /// # Panics
    /// Panics if `coefs.len() != self.len()`.
    pub fn eval_expansion(&self, coefs: &[f64], t: f64, deriv: usize) -> f64 {
        assert_eq!(coefs.len(), self.len(), "coefficient length mismatch");
        let vals = self.eval(t, deriv);
        mfod_linalg::vector::dot(coefs, &vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial two-function basis {1, t} on [0, 1] for trait-level tests.
    struct LinearBasis;

    impl Basis for LinearBasis {
        fn len(&self) -> usize {
            2
        }
        fn domain(&self) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn eval_into(&self, t: f64, deriv: usize, out: &mut [f64]) {
            assert_eq!(out.len(), 2);
            let t = t.clamp(0.0, 1.0);
            match deriv {
                0 => {
                    out[0] = 1.0;
                    out[1] = t;
                }
                1 => {
                    out[0] = 0.0;
                    out[1] = 1.0;
                }
                _ => {
                    out[0] = 0.0;
                    out[1] = 0.0;
                }
            }
        }
        fn penalty(&self, q: usize) -> Matrix {
            // ∫₀¹ Dφ_j Dφ_m dt with Dφ = (0, 1): only R[1,1] = 1 for q=1.
            let mut r = Matrix::zeros(2, 2);
            match q {
                0 => {
                    r[(0, 0)] = 1.0;
                    r[(0, 1)] = 0.5;
                    r[(1, 0)] = 0.5;
                    r[(1, 1)] = 1.0 / 3.0;
                }
                1 => r[(1, 1)] = 1.0,
                _ => {}
            }
            r
        }
    }

    #[test]
    fn design_matrix_shapes_and_values() {
        let b = LinearBasis;
        let phi = b.design_matrix(&[0.0, 0.5, 1.0], 0);
        assert_eq!(phi.shape(), (3, 2));
        assert_eq!(phi[(1, 1)], 0.5);
        let dphi = b.design_matrix(&[0.3], 1);
        assert_eq!(dphi[(0, 0)], 0.0);
        assert_eq!(dphi[(0, 1)], 1.0);
    }

    #[test]
    fn eval_expansion_combines() {
        let b: &dyn Basis = &LinearBasis;
        // f(t) = 2 + 3t
        let f = b.eval_expansion(&[2.0, 3.0], 0.5, 0);
        assert!((f - 3.5).abs() < 1e-12);
        let df = b.eval_expansion(&[2.0, 3.0], 0.5, 1);
        assert!((df - 3.0).abs() < 1e-12);
    }

    #[test]
    fn is_empty_default() {
        assert!(!LinearBasis.is_empty());
    }
}
