//! Penalized least-squares smoothing (Eq. 3–4 of the paper) and
//! cross-validated selection of the basis size and penalty weight.
//!
//! Given observations `y_j = x(t_j) + ε_j`, the coefficient vector of the
//! basis expansion minimizes
//!
//! ```text
//! J_λ(α) = ‖y − Φα‖² + λ αᵀ R_q α
//! ```
//!
//! whose closed-form minimizer is `α* = (ΦᵀΦ + λR_q)⁻¹ Φᵀ y` — a ridge
//! regression special case solved here by Cholesky factorization.
//! Leave-one-out cross-validation is computed exactly from the hat matrix
//! (`LOOCV = Σ ((y_j − ŷ_j)/(1 − h_jj))²`), which is how the paper selects
//! basis sizes per sample and channel (Sec. 4.1).

use crate::basis::Basis;
use crate::datum::FunctionalDatum;
use crate::error::FdaError;
use crate::selcache::SelectionPlan;
use crate::Result;
use mfod_linalg::{vector, Cholesky, Matrix};
use std::sync::Arc;

/// Model-selection criterion for [`BasisSelector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCriterion {
    /// Exact leave-one-out cross-validation from the hat-matrix diagonal
    /// (the paper's choice).
    Loocv,
    /// Generalized cross-validation `m·RSS / (m − tr H)²` — cheaper and
    /// smoother in λ; a standard alternative.
    Gcv,
}

/// Goodness-of-fit diagnostics of a penalized least-squares fit.
#[derive(Debug, Clone)]
pub struct FitDiagnostics {
    /// Residual sum of squares on the observation points.
    pub rss: f64,
    /// Effective degrees of freedom `tr H`.
    pub df: f64,
    /// Exact leave-one-out cross-validation score.
    pub loocv: f64,
    /// Generalized cross-validation score.
    pub gcv: f64,
    /// Diagonal of the hat matrix, one entry per observation.
    pub hat_diag: Vec<f64>,
}

/// A penalized least-squares smoother for a fixed basis, penalty order `q`
/// and penalty weight `λ >= 0`.
#[derive(Clone)]
pub struct PenalizedLeastSquares {
    basis: Arc<dyn Basis>,
    lambda: f64,
    penalty_order: usize,
    /// Cached penalty matrix `R_q` (λ-independent).
    penalty: Matrix,
}

impl std::fmt::Debug for PenalizedLeastSquares {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PenalizedLeastSquares")
            .field("basis", &self.basis.name())
            .field("len", &self.basis.len())
            .field("lambda", &self.lambda)
            .field("penalty_order", &self.penalty_order)
            .finish()
    }
}

impl PenalizedLeastSquares {
    /// Creates a smoother that owns its basis.
    pub fn new(basis: impl Basis + 'static, lambda: f64, penalty_order: usize) -> Result<Self> {
        Self::with_arc(Arc::new(basis), lambda, penalty_order)
    }

    /// Creates a smoother sharing an existing basis.
    pub fn with_arc(basis: Arc<dyn Basis>, lambda: f64, penalty_order: usize) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(FdaError::InvalidParameter(format!(
                "lambda must be finite and >= 0, got {lambda}"
            )));
        }
        let penalty = basis.penalty(penalty_order);
        Ok(PenalizedLeastSquares {
            basis,
            lambda,
            penalty_order,
            penalty,
        })
    }

    /// The basis used by this smoother.
    pub fn basis(&self) -> &Arc<dyn Basis> {
        &self.basis
    }

    /// Penalty weight λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Penalty derivative order `q`.
    pub fn penalty_order(&self) -> usize {
        self.penalty_order
    }

    /// Checks that `points` observations are enough to determine this
    /// smoother's system (`L` points for the unpenalized case, 2 otherwise).
    fn check_point_count(&self, points: usize) -> Result<()> {
        let l = self.basis.len();
        let need = if self.lambda == 0.0 { l } else { 2 };
        if points < need {
            return Err(if self.lambda == 0.0 && points < l {
                FdaError::BasisTooLarge {
                    basis_len: l,
                    points,
                }
            } else {
                FdaError::TooFewPoints { got: points, need }
            });
        }
        Ok(())
    }

    fn validate(&self, ts: &[f64], ys: &[f64]) -> Result<()> {
        if ts.len() != ys.len() {
            return Err(FdaError::LengthMismatch {
                t_len: ts.len(),
                y_len: ys.len(),
            });
        }
        if !vector::all_finite(ts) || !vector::all_finite(ys) {
            return Err(FdaError::NonFinite);
        }
        self.check_point_count(ts.len())
    }

    /// Assembles and factorizes the normal-equation matrix
    /// `M = ΦᵀΦ + λ R_q`, returning `(Φ, chol(M))`.
    pub(crate) fn factorize(&self, ts: &[f64]) -> Result<(Matrix, Cholesky)> {
        let phi = self.basis.design_matrix(ts, 0);
        let mut m = phi.gram();
        if self.lambda > 0.0 {
            m.axpy(self.lambda, &self.penalty);
        }
        // Jitter rescues the λ=0 / collinear-columns corner without
        // perturbing well-posed systems.
        let chol = Cholesky::new_jittered(&m, 1e-12)?;
        Ok((phi, chol))
    }

    /// Fits the basis expansion to observations `(ts, ys)`.
    pub fn fit(&self, ts: &[f64], ys: &[f64]) -> Result<FunctionalDatum> {
        self.validate(ts, ys)?;
        let (phi, chol) = self.factorize(ts)?;
        let coefs = chol.solve(&phi.tr_matvec(ys));
        FunctionalDatum::new(Arc::clone(&self.basis), coefs)
    }

    /// Fits and additionally returns exact LOOCV/GCV diagnostics.
    pub fn fit_with_diagnostics(
        &self,
        ts: &[f64],
        ys: &[f64],
    ) -> Result<(FunctionalDatum, FitDiagnostics)> {
        self.validate(ts, ys)?;
        let (phi, chol) = self.factorize(ts)?;
        let coefs = chol.solve(&phi.tr_matvec(ys));
        let hat_diag = hat_diagonal(&phi, &chol);
        let df: f64 = hat_diag.iter().sum();
        let fitted = phi.matvec(&coefs);
        let diagnostics = diagnostics_from(ys, &fitted, hat_diag, df);
        let datum = FunctionalDatum::new(Arc::clone(&self.basis), coefs)?;
        Ok((datum, diagnostics))
    }
}

/// Diagonal of the hat matrix `H = Φ M⁻¹ Φᵀ` without forming `M⁻¹`:
/// `h_jj = φ_jᵀ (LLᵀ)⁻¹ φ_j = ‖L⁻¹ φ_j‖²`, computed for **all**
/// observations in one fused forward-substitution sweep
/// ([`Cholesky::solve_lower_multi`] on `Φᵀ`) — `L` streams from memory
/// once per hat diagonal instead of once per observation. Per
/// observation the operations (ascending-order subtractions, one
/// division per row, ascending-order sum of squares) are identical to
/// the former per-column `solve_lower` + dot loop, so the diagonal is
/// bit-for-bit unchanged.
///
/// Shared by [`PenalizedLeastSquares::fit_with_diagnostics`] and the
/// y-independent precomputation of [`crate::selcache::SelectionPlan`], so
/// the planned and unplanned selection paths produce bit-identical
/// diagnostics.
pub(crate) fn hat_diagonal(phi: &Matrix, chol: &Cholesky) -> Vec<f64> {
    let z = chol.solve_lower_multi(phi.transpose());
    let mut h = vec![0.0; phi.nrows()];
    for i in 0..z.nrows() {
        for (hj, &v) in h.iter_mut().zip(z.row(i)) {
            *hj += v * v;
        }
    }
    h
}

/// RSS / LOOCV / GCV scores of a fit from its residuals and (possibly
/// precomputed) hat diagonal, without materializing a [`FitDiagnostics`]
/// — the allocation-free scoring pass [`crate::selcache::SelectionPlan`]
/// runs once per ladder candidate. `df` must be the sum of `hat_diag`.
pub(crate) fn fit_scores(ys: &[f64], fitted: &[f64], hat_diag: &[f64], df: f64) -> (f64, f64, f64) {
    let m = ys.len();
    let mut rss = 0.0;
    let mut loocv = 0.0;
    for j in 0..m {
        let r = ys[j] - fitted[j];
        rss += r * r;
        // guard h -> 1 (exact interpolation at that point)
        let denom = (1.0 - hat_diag[j]).max(1e-10);
        let lr = r / denom;
        loocv += lr * lr;
    }
    let denom = (m as f64 - df).max(1e-10);
    let gcv = m as f64 * rss / (denom * denom);
    (rss, loocv, gcv)
}

/// RSS / LOOCV / GCV from a fit's residuals and (possibly precomputed)
/// hat diagonal. `df` must be the sum of `hat_diag` (cached by the
/// selection plan; recomputed by the direct path with the same sum).
pub(crate) fn diagnostics_from(
    ys: &[f64],
    fitted: &[f64],
    hat_diag: Vec<f64>,
    df: f64,
) -> FitDiagnostics {
    let (rss, loocv, gcv) = fit_scores(ys, fitted, &hat_diag, df);
    FitDiagnostics {
        rss,
        df,
        loocv,
        gcv,
        hat_diag,
    }
}

impl PenalizedLeastSquares {
    /// Specializes this smoother to a fixed observation grid `ts`,
    /// precomputing the solve operator `S = (ΦᵀΦ + λR_q)⁻¹ Φᵀ`.
    ///
    /// This is the serving-path complement of [`PenalizedLeastSquares::fit`]:
    /// offline fitting re-assembles and re-factorizes the normal equations
    /// for every curve, which is wasted work in a streaming system where
    /// every incoming window is observed at the *same* times. With the
    /// operator frozen, smoothing a new curve is a single `L×m` matrix-
    /// vector product.
    pub fn freeze(&self, ts: &[f64]) -> Result<FrozenSmoother> {
        if !vector::all_finite(ts) {
            return Err(FdaError::NonFinite);
        }
        self.check_point_count(ts.len())?;
        let (phi, chol) = self.factorize(ts)?;
        let solve_op = chol.solve_matrix(&phi.transpose());
        Ok(FrozenSmoother {
            basis: Arc::clone(&self.basis),
            ts: ts.to_vec(),
            solve_op,
        })
    }
}

/// A penalized least-squares smoother frozen to a fixed observation grid:
/// coefficients of a new curve are `α = S·y` with the cached operator `S`.
///
/// Numerical note: `S·y` and the factorized solve of [`PenalizedLeastSquares
/// ::fit`] agree to solver round-off (≈1e-12 relative), not bit for bit —
/// callers that need exact parity with the offline path must refit instead.
#[derive(Clone)]
pub struct FrozenSmoother {
    basis: Arc<dyn Basis>,
    ts: Vec<f64>,
    /// `L × m` cached solve operator.
    solve_op: Matrix,
}

impl std::fmt::Debug for FrozenSmoother {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenSmoother")
            .field("basis", &self.basis.name())
            .field("len", &self.basis.len())
            .field("points", &self.ts.len())
            .finish()
    }
}

impl FrozenSmoother {
    /// Rebuilds a frozen smoother from snapshot parts, re-validating the
    /// shape invariants the freeze path guarantees (`solve_op` is
    /// `L × m` for `L` basis functions and `m` observation times).
    pub(crate) fn from_parts(
        basis: Arc<dyn Basis>,
        ts: Vec<f64>,
        solve_op: Matrix,
    ) -> Result<Self> {
        if !vector::all_finite(&ts) {
            return Err(FdaError::NonFinite);
        }
        if solve_op.shape() != (basis.len(), ts.len()) {
            return Err(FdaError::InvalidParameter(format!(
                "frozen solve operator is {}x{}, expected {}x{}",
                solve_op.nrows(),
                solve_op.ncols(),
                basis.len(),
                ts.len()
            )));
        }
        Ok(FrozenSmoother {
            basis,
            ts,
            solve_op,
        })
    }

    /// The cached solve operator (snapshot serialization).
    pub(crate) fn solve_op(&self) -> &Matrix {
        &self.solve_op
    }

    /// The observation times this smoother is specialized to.
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }

    /// The underlying basis.
    pub fn basis(&self) -> &Arc<dyn Basis> {
        &self.basis
    }

    /// Smooths observations taken at the frozen grid into a functional
    /// datum. `ys` must have one value per frozen observation time.
    pub fn smooth(&self, ys: &[f64]) -> Result<FunctionalDatum> {
        if ys.len() != self.ts.len() {
            return Err(FdaError::LengthMismatch {
                t_len: self.ts.len(),
                y_len: ys.len(),
            });
        }
        if !vector::all_finite(ys) {
            return Err(FdaError::NonFinite);
        }
        FunctionalDatum::new(Arc::clone(&self.basis), self.solve_op.matvec(ys))
    }
}

/// Cross-validated selection of the B-spline basis size (and optionally λ),
/// mirroring the paper's per-sample, per-channel leave-one-out procedure
/// (Sec. 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSelector {
    /// Candidate basis sizes `L` (each must be >= `order`).
    pub sizes: Vec<usize>,
    /// Candidate penalty weights λ (use `[0.0]` for unpenalized fits).
    pub lambdas: Vec<f64>,
    /// Spline order `k` (4 = cubic).
    pub order: usize,
    /// Penalty derivative order `q` (2 = curvature penalty).
    pub penalty_order: usize,
    /// Score used to rank candidates.
    pub criterion: SelectionCriterion,
}

/// Outcome of a [`BasisSelector`] search.
#[derive(Debug)]
pub struct SelectionResult {
    /// The winning fitted curve.
    pub datum: FunctionalDatum,
    /// Winning basis size.
    pub size: usize,
    /// Winning penalty weight.
    pub lambda: f64,
    /// Criterion value of the winner.
    pub score: f64,
    /// Diagnostics of the winning fit.
    pub diagnostics: FitDiagnostics,
}

impl Default for BasisSelector {
    fn default() -> Self {
        // A parsimonious ladder: derivative-based mappings (curvature)
        // amplify any noise the fit retains, and large bases tracking noise
        // create spurious near-stationary points whose curvature explodes.
        // LOOCV within this ladder reproduces the paper's protocol while
        // keeping the derivatives trustworthy.
        BasisSelector {
            sizes: vec![6, 8, 10, 12],
            lambdas: vec![1e-8],
            order: 4,
            penalty_order: 2,
            criterion: SelectionCriterion::Loocv,
        }
    }
}

impl BasisSelector {
    /// Rebuilds the penalized smoother corresponding to a selection
    /// outcome `(size, lambda)` on the domain `[a, b]` — the bridge from a
    /// recorded [`SelectionResult`] back to a reusable smoother (e.g. to
    /// [`PenalizedLeastSquares::freeze`] it for serving).
    pub fn smoother(
        &self,
        a: f64,
        b: f64,
        size: usize,
        lambda: f64,
    ) -> Result<PenalizedLeastSquares> {
        let basis = crate::bspline::BSplineBasis::uniform(a, b, size, self.order)?;
        PenalizedLeastSquares::new(basis, lambda, self.penalty_order)
    }

    /// Selects the best B-spline fit for a single channel observed at
    /// `(ts, ys)`; the basis domain is `[min t, max t]`.
    ///
    /// Internally this builds a single-use [`SelectionPlan`] — callers
    /// that score many curves on one shared grid should build the plan
    /// once with [`BasisSelector::plan`] and reuse it: the per-candidate
    /// design matrix, factorization and hat diagonal are y-independent,
    /// and a reused plan returns bit-identical results at a fraction of
    /// the cost.
    pub fn select(&self, ts: &[f64], ys: &[f64]) -> Result<SelectionResult> {
        if self.sizes.is_empty() || self.lambdas.is_empty() {
            return Err(FdaError::InvalidParameter(
                "selector needs at least one size and one lambda".into(),
            ));
        }
        if ts.len() != ys.len() {
            return Err(FdaError::LengthMismatch {
                t_len: ts.len(),
                y_len: ys.len(),
            });
        }
        // Reject non-finite measurements before the plan's per-candidate
        // precompute: an O(m) scan instead of a wasted ladder build.
        if !vector::all_finite(ts) || !vector::all_finite(ys) {
            return Err(FdaError::NonFinite);
        }
        SelectionPlan::build(self, ts)?.select(ys)
    }

    /// Precomputes the y-independent part of [`BasisSelector::select`] for
    /// the observation grid `ts` (see [`SelectionPlan`]).
    pub fn plan(&self, ts: &[f64]) -> Result<SelectionPlan> {
        SelectionPlan::build(self, ts)
    }

    /// [`BasisSelector::select`] through a cached [`SelectionPlan`] when
    /// it covers this selector and grid, with a per-sample fallback to the
    /// uncached path when it does not (e.g. a batch mixing observation
    /// grids). Both paths return bit-identical [`SelectionResult`]s.
    pub fn select_with_plan(
        &self,
        plan: &SelectionPlan,
        ts: &[f64],
        ys: &[f64],
    ) -> Result<SelectionResult> {
        if plan.covers(self, ts) {
            // covers() guarantees ts matches the plan's grid, so
            // plan.select's own length/finiteness validation applies.
            plan.select(ys)
        } else {
            self.select(ts, ys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bspline::BSplineBasis;
    use crate::polynomial::PolynomialBasis;

    fn sine_data(m: usize, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        // deterministic pseudo-noise so tests are reproducible without rand
        let ys: Vec<f64> = ts
            .iter()
            .enumerate()
            .map(|(j, &t)| {
                let n = ((j as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                (std::f64::consts::TAU * t).sin() + noise * n
            })
            .collect();
        (ts, ys)
    }

    #[test]
    fn interpolates_polynomial_exactly() {
        // Cubic splines with zero penalty reproduce a quadratic exactly.
        let ts: Vec<f64> = (0..20).map(|j| j as f64 / 19.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t - 3.0 * t * t).collect();
        let basis = BSplineBasis::uniform(0.0, 1.0, 8, 4).unwrap();
        let fit = PenalizedLeastSquares::new(basis, 0.0, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        for &t in &[0.05, 0.33, 0.72, 0.95] {
            let expect = 1.0 + 2.0 * t - 3.0 * t * t;
            assert!((fit.eval(t) - expect).abs() < 1e-9, "t={t}");
        }
        // first derivative too: 2 - 6t
        for &t in &[0.2, 0.6] {
            assert!((fit.eval_deriv(t, 1) - (2.0 - 6.0 * t)).abs() < 1e-8);
        }
    }

    #[test]
    fn smoothing_reduces_noise() {
        let (ts, ys) = sine_data(60, 0.3);
        let basis = BSplineBasis::uniform(0.0, 1.0, 10, 4).unwrap();
        let fit = PenalizedLeastSquares::new(basis, 1e-5, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        // fitted curve should be closer to the clean signal than the data
        let mut err_fit = 0.0;
        let mut err_data = 0.0;
        for (j, &t) in ts.iter().enumerate() {
            let clean = (std::f64::consts::TAU * t).sin();
            err_fit += (fit.eval(t) - clean).powi(2);
            err_data += (ys[j] - clean).powi(2);
        }
        // the pseudo-noise is only approximately white; any clear reduction
        // demonstrates that smoothing denoises
        assert!(err_fit < err_data * 0.8, "fit {err_fit} vs data {err_data}");
    }

    #[test]
    fn heavy_penalty_flattens_curve() {
        let (ts, ys) = sine_data(50, 0.0);
        let basis = BSplineBasis::uniform(0.0, 1.0, 12, 4).unwrap();
        // Penalizing the first derivative with a huge λ forces a constant.
        let fit = PenalizedLeastSquares::new(basis, 1e9, 1)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        let values: Vec<f64> = ts.iter().map(|&t| fit.eval(t)).collect();
        let spread = vector::max(&values) - vector::min(&values);
        assert!(spread < 0.05, "spread {spread}");
    }

    #[test]
    fn lambda_zero_requires_enough_points() {
        let basis = BSplineBasis::uniform(0.0, 1.0, 10, 4).unwrap();
        let s = PenalizedLeastSquares::new(basis, 0.0, 2).unwrap();
        let ts = [0.0, 0.5, 1.0];
        let ys = [0.0, 1.0, 0.0];
        assert!(matches!(
            s.fit(&ts, &ys),
            Err(FdaError::BasisTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let basis = BSplineBasis::uniform(0.0, 1.0, 5, 4).unwrap();
        let s = PenalizedLeastSquares::new(basis, 1.0, 2).unwrap();
        assert!(matches!(
            s.fit(&[0.0, 1.0], &[0.0]),
            Err(FdaError::LengthMismatch { .. })
        ));
        assert!(matches!(
            s.fit(&[0.0, f64::NAN], &[0.0, 1.0]),
            Err(FdaError::NonFinite)
        ));
        let basis = BSplineBasis::uniform(0.0, 1.0, 5, 4).unwrap();
        assert!(PenalizedLeastSquares::new(basis, -1.0, 2).is_err());
    }

    #[test]
    fn diagnostics_consistency() {
        let (ts, ys) = sine_data(40, 0.1);
        let basis = BSplineBasis::uniform(0.0, 1.0, 8, 4).unwrap();
        let s = PenalizedLeastSquares::new(basis, 1e-4, 2).unwrap();
        let (_, d) = s.fit_with_diagnostics(&ts, &ys).unwrap();
        assert!(d.rss > 0.0);
        // df is between 0 and the basis size and at most m
        assert!(d.df > 0.0 && d.df <= 8.0 + 1e-9);
        // hat diag entries in [0, 1]
        assert!(d
            .hat_diag
            .iter()
            .all(|&h| (-1e-9..=1.0 + 1e-9).contains(&h)));
        // LOOCV >= RSS (residuals are inflated by 1/(1-h))
        assert!(d.loocv >= d.rss - 1e-12);
        assert!(d.gcv > 0.0);
    }

    #[test]
    fn loocv_detects_overfitting_ladder() {
        // With pure noise, LOOCV should prefer fewer basis functions.
        let m = 40;
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let ys: Vec<f64> = (0..m)
            .map(|j| ((j as f64 * 78.233).sin() * 43758.5453).fract() - 0.5)
            .collect();
        let score = |size: usize| {
            let basis = BSplineBasis::uniform(0.0, 1.0, size, 4).unwrap();
            let s = PenalizedLeastSquares::new(basis, 0.0, 2).unwrap();
            s.fit_with_diagnostics(&ts, &ys).unwrap().1.loocv
        };
        assert!(
            score(4) < score(30),
            "LOOCV should penalize overfitting noise"
        );
    }

    #[test]
    fn selector_picks_reasonable_size() {
        let (ts, ys) = sine_data(60, 0.15);
        let sel = BasisSelector {
            sizes: vec![4, 6, 8, 12, 20, 40],
            ..BasisSelector::default()
        };
        let r = sel.select(&ts, &ys).unwrap();
        // A single sine needs few basis functions; 40 would badly overfit.
        assert!(r.size <= 20, "selected {}", r.size);
        assert!(r.score.is_finite());
        // smooth fit should track the clean sine
        for &t in &[0.25, 0.5, 0.75] {
            let clean = (std::f64::consts::TAU * t).sin();
            assert!((r.datum.eval(t) - clean).abs() < 0.2);
        }
    }

    #[test]
    fn selector_respects_gcv_choice() {
        let (ts, ys) = sine_data(50, 0.1);
        let sel = BasisSelector {
            criterion: SelectionCriterion::Gcv,
            ..BasisSelector::default()
        };
        let r = sel.select(&ts, &ys).unwrap();
        assert!(r.score > 0.0);
    }

    #[test]
    fn selector_error_paths() {
        let sel = BasisSelector {
            sizes: vec![],
            ..BasisSelector::default()
        };
        assert!(sel.select(&[0.0, 1.0], &[0.0, 1.0]).is_err());
        let sel = BasisSelector::default();
        assert!(sel.select(&[0.0], &[0.0]).is_err());
        assert!(sel.select(&[0.0, 1.0], &[0.0]).is_err());
        // all candidates too large for the data
        let sel = BasisSelector {
            sizes: vec![50],
            ..BasisSelector::default()
        };
        assert!(sel.select(&[0.0, 0.5, 1.0], &[0.0, 1.0, 0.0]).is_err());
    }

    #[test]
    fn works_with_other_bases() {
        let ts: Vec<f64> = (0..30).map(|j| j as f64 / 29.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 2.0 * t + 1.0).collect();
        let fit = PenalizedLeastSquares::new(PolynomialBasis::new(0.0, 1.0, 3).unwrap(), 0.0, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        assert!((fit.eval(0.5) - 2.0).abs() < 1e-10);
        assert!((fit.eval_deriv(0.3, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frozen_smoother_matches_fit() {
        let (ts, ys) = sine_data(50, 0.2);
        let basis = BSplineBasis::uniform(0.0, 1.0, 10, 4).unwrap();
        let s = PenalizedLeastSquares::new(basis, 1e-4, 2).unwrap();
        let offline = s.fit(&ts, &ys).unwrap();
        let frozen = s.freeze(&ts).unwrap();
        assert_eq!(frozen.ts().len(), 50);
        assert_eq!(frozen.basis().len(), 10);
        assert!(format!("{frozen:?}").contains("FrozenSmoother"));
        let online = frozen.smooth(&ys).unwrap();
        for (a, b) in offline.coefs().iter().zip(online.coefs()) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
        // A second curve through the same operator.
        let ys2: Vec<f64> = ts
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).cos())
            .collect();
        let offline2 = s.fit(&ts, &ys2).unwrap();
        let online2 = frozen.smooth(&ys2).unwrap();
        for (a, b) in offline2.coefs().iter().zip(online2.coefs()) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn frozen_smoother_rejects_bad_inputs() {
        let (ts, _) = sine_data(30, 0.0);
        let basis = BSplineBasis::uniform(0.0, 1.0, 8, 4).unwrap();
        let s = PenalizedLeastSquares::new(basis, 1e-4, 2).unwrap();
        assert!(matches!(
            s.freeze(&[0.0, f64::NAN]),
            Err(FdaError::NonFinite)
        ));
        let frozen = s.freeze(&ts).unwrap();
        assert!(matches!(
            frozen.smooth(&[1.0, 2.0]),
            Err(FdaError::LengthMismatch { .. })
        ));
        assert!(matches!(
            frozen.smooth(&vec![f64::NAN; 30]),
            Err(FdaError::NonFinite)
        ));
        // λ = 0 with too few points for the basis must refuse to freeze.
        let basis = BSplineBasis::uniform(0.0, 1.0, 10, 4).unwrap();
        let s0 = PenalizedLeastSquares::new(basis, 0.0, 2).unwrap();
        assert!(matches!(
            s0.freeze(&[0.0, 0.5, 1.0]),
            Err(FdaError::BasisTooLarge { .. })
        ));
    }

    #[test]
    fn selector_smoother_roundtrip() {
        let (ts, ys) = sine_data(40, 0.1);
        let sel = BasisSelector::default();
        let r = sel.select(&ts, &ys).unwrap();
        let rebuilt = sel.smoother(0.0, 1.0, r.size, r.lambda).unwrap();
        assert_eq!(rebuilt.basis().len(), r.size);
        assert_eq!(rebuilt.lambda(), r.lambda);
        // Refitting with the rebuilt smoother reproduces the selected curve.
        let refit = rebuilt.fit(&ts, &ys).unwrap();
        for (a, b) in refit.coefs().iter().zip(r.datum.coefs()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fourier_basis_recovers_periodic_signal() {
        use crate::fourier::FourierBasis;
        // y = 2 sin(2πt) + cos(4πt), exactly representable with 5 Fourier fns
        let m = 50;
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / m as f64).collect(); // [0, 1)
        let ys: Vec<f64> = ts
            .iter()
            .map(|&t| {
                2.0 * (std::f64::consts::TAU * t).sin() + (2.0 * std::f64::consts::TAU * t).cos()
            })
            .collect();
        let basis = FourierBasis::new(0.0, 1.0, 5).unwrap();
        let fit = PenalizedLeastSquares::new(basis, 0.0, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        for &t in &[0.1, 0.35, 0.62, 0.9] {
            let expect =
                2.0 * (std::f64::consts::TAU * t).sin() + (2.0 * std::f64::consts::TAU * t).cos();
            assert!((fit.eval(t) - expect).abs() < 1e-9, "t={t}");
        }
        // analytic derivative: 4π cos(2πt) − 4π sin(4πt)... checked at one point
        let t = 0.2;
        let expect = 2.0 * std::f64::consts::TAU * (std::f64::consts::TAU * t).cos()
            - 2.0 * std::f64::consts::TAU * (2.0 * std::f64::consts::TAU * t).sin();
        assert!((fit.eval_deriv(t, 1) - expect).abs() < 1e-7);
    }

    #[test]
    fn penalized_fourier_damps_high_harmonics() {
        use crate::fourier::FourierBasis;
        // pure noise with a strong 2nd-derivative penalty: high harmonics
        // (large penalty eigenvalues) should be suppressed the most
        let m = 60;
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / m as f64).collect();
        let ys: Vec<f64> = (0..m)
            .map(|j| ((j as f64 * 37.7).sin() * 1713.7).fract() - 0.5)
            .collect();
        let basis = FourierBasis::new(0.0, 1.0, 9).unwrap();
        let fit = PenalizedLeastSquares::new(basis, 10.0, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        let coefs = fit.coefs();
        // the top harmonic pair (indices 7, 8) must be far smaller than the
        // first pair (indices 1, 2)
        let low = coefs[1].abs().max(coefs[2].abs());
        let high = coefs[7].abs().max(coefs[8].abs());
        assert!(high < low, "high harmonics {high} not damped below {low}");
    }
}
