//! B-spline bases: piecewise-polynomial bases with local support, the
//! paper's choice for smooth non-periodic functional data (Sec. 2.1).
//!
//! Evaluation uses the numerically stable Cox–de Boor triangular scheme,
//! derivatives the standard knot-difference recursion (both following
//! Piegl & Tiller, *The NURBS Book*, algorithms A2.1–A2.3). The roughness
//! penalty `R_q = ∫ D^q φ_j D^q φ_m dt` is assembled exactly by per-span
//! Gauss–Legendre quadrature (the integrand is a polynomial of degree
//! `≤ 2(k−1−q)` on each span).

use crate::basis::Basis;
use crate::error::FdaError;
use crate::Result;
use mfod_linalg::quadrature::gauss_legendre_on;
use mfod_linalg::Matrix;

/// A B-spline basis of order `k` (degree `k − 1`) with an open-uniform knot
/// vector on `[a, b]`.
///
/// With `L` basis functions the knot vector has `L + k` entries: the first
/// and last knot are repeated `k` times and `L − k` interior knots are
/// placed uniformly. `L = k` yields the Bernstein basis on `[a, b]`.
#[derive(Debug, Clone)]
pub struct BSplineBasis {
    knots: Vec<f64>,
    order: usize,
    len: usize,
    a: f64,
    b: f64,
}

impl BSplineBasis {
    /// Creates an open-uniform B-spline basis with `len` functions of order
    /// `order` on `[a, b]`.
    ///
    /// Requires `order >= 1`, `len >= order` and `a < b`.
    pub fn uniform(a: f64, b: f64, len: usize, order: usize) -> Result<Self> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        if order == 0 {
            return Err(FdaError::InvalidBasis("order must be >= 1".into()));
        }
        if len < order {
            return Err(FdaError::InvalidBasis(format!(
                "basis size {len} must be >= order {order}"
            )));
        }
        let n_interior = len - order;
        let mut knots = Vec::with_capacity(len + order);
        knots.extend(std::iter::repeat_n(a, order));
        for i in 1..=n_interior {
            knots.push(a + (b - a) * i as f64 / (n_interior + 1) as f64);
        }
        knots.extend(std::iter::repeat_n(b, order));
        Ok(BSplineBasis {
            knots,
            order,
            len,
            a,
            b,
        })
    }

    /// Creates a basis from explicit interior knots (sorted, strictly inside
    /// `(a, b)`); boundary knots are repeated `order` times.
    pub fn with_interior_knots(a: f64, b: f64, interior: &[f64], order: usize) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() || !interior.iter().all(|v| v.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        if order == 0 {
            return Err(FdaError::InvalidBasis("order must be >= 1".into()));
        }
        for w in interior.windows(2) {
            if w[0] > w[1] {
                return Err(FdaError::InvalidBasis(
                    "interior knots must be sorted".into(),
                ));
            }
        }
        if interior.iter().any(|&t| t <= a || t >= b) {
            return Err(FdaError::InvalidBasis(
                "interior knots must lie strictly inside (a, b)".into(),
            ));
        }
        let len = interior.len() + order;
        let mut knots = Vec::with_capacity(len + order);
        knots.extend(std::iter::repeat_n(a, order));
        knots.extend_from_slice(interior);
        knots.extend(std::iter::repeat_n(b, order));
        Ok(BSplineBasis {
            knots,
            order,
            len,
            a,
            b,
        })
    }

    /// Spline order `k` (polynomial degree + 1).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Polynomial degree `k − 1`.
    pub fn degree(&self) -> usize {
        self.order - 1
    }

    /// Full knot vector, including the repeated boundary knots.
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// Finds the knot span index `mu` with `knots[mu] <= t < knots[mu+1]`
    /// (the last non-empty span for `t == b`).
    fn find_span(&self, t: f64) -> usize {
        let d = self.degree();
        let n = self.len - 1; // last basis index
        if t >= self.knots[n + 1] {
            return n;
        }
        if t <= self.knots[d] {
            return d;
        }
        // binary search
        let (mut lo, mut hi) = (d, n + 1);
        let mut mid = (lo + hi) / 2;
        while t < self.knots[mid] || t >= self.knots[mid + 1] {
            if t < self.knots[mid] {
                hi = mid;
            } else {
                lo = mid;
            }
            mid = (lo + hi) / 2;
        }
        mid
    }

    /// Cox–de Boor: values of the `k` basis functions that are non-zero on
    /// the span (`N_{span-d}, …, N_{span}`), NURBS book A2.2.
    fn basis_funs(&self, span: usize, t: f64) -> Vec<f64> {
        let d = self.degree();
        let mut n = vec![0.0; d + 1];
        let mut left = vec![0.0; d + 1];
        let mut right = vec![0.0; d + 1];
        n[0] = 1.0;
        for j in 1..=d {
            left[j] = t - self.knots[span + 1 - j];
            right[j] = self.knots[span + j] - t;
            let mut saved = 0.0;
            for r in 0..j {
                let temp = n[r] / (right[r + 1] + left[j - r]);
                n[r] = saved + right[r + 1] * temp;
                saved = left[j - r] * temp;
            }
            n[j] = saved;
        }
        n
    }

    /// Values and derivatives up to order `nd` of the non-zero basis
    /// functions on the span of `t` (NURBS book A2.3). Returns a
    /// `(nd+1) x (d+1)` table: `ders[q][r] = D^q N_{span-d+r}(t)`.
    fn ders_basis_funs(&self, span: usize, t: f64, nd: usize) -> Vec<Vec<f64>> {
        let d = self.degree();
        let nd_eff = nd.min(d);
        let mut ndu = vec![vec![0.0; d + 1]; d + 1];
        let mut left = vec![0.0; d + 1];
        let mut right = vec![0.0; d + 1];
        ndu[0][0] = 1.0;
        for j in 1..=d {
            left[j] = t - self.knots[span + 1 - j];
            right[j] = self.knots[span + j] - t;
            let mut saved = 0.0;
            for r in 0..j {
                // lower triangle: knot differences
                ndu[j][r] = right[r + 1] + left[j - r];
                let temp = ndu[r][j - 1] / ndu[j][r];
                // upper triangle: basis values
                ndu[r][j] = saved + right[r + 1] * temp;
                saved = left[j - r] * temp;
            }
            ndu[j][j] = saved;
        }
        let mut ders = vec![vec![0.0; d + 1]; nd + 1];
        for r in 0..=d {
            ders[0][r] = ndu[r][d];
        }
        if nd_eff == 0 {
            return ders;
        }
        let mut a = vec![vec![0.0; d + 1]; 2];
        for r in 0..=d {
            let mut s1 = 0;
            let mut s2 = 1;
            a[0][0] = 1.0;
            for q in 1..=nd_eff {
                let mut dv = 0.0;
                let rk = r as isize - q as isize;
                let pk = (d - q) as isize;
                if r as isize >= q as isize {
                    a[s2][0] = a[s1][0] / ndu[(pk + 1) as usize][rk as usize];
                    dv = a[s2][0] * ndu[rk as usize][pk as usize];
                }
                let j1 = if rk >= -1 { 1 } else { (-rk) as usize };
                let j2 = if (r as isize - 1) <= pk { q - 1 } else { d - r };
                for j in j1..=j2 {
                    a[s2][j] = (a[s1][j] - a[s1][j - 1])
                        / ndu[(pk + 1) as usize][(rk + j as isize) as usize];
                    dv += a[s2][j] * ndu[(rk + j as isize) as usize][pk as usize];
                }
                if r as isize <= pk {
                    a[s2][q] = -a[s1][q - 1] / ndu[(pk + 1) as usize][r];
                    dv += a[s2][q] * ndu[r][pk as usize];
                }
                ders[q][r] = dv;
                std::mem::swap(&mut s1, &mut s2);
            }
        }
        // multiply by d! / (d - q)!
        let mut factor = d as f64;
        for q in 1..=nd_eff {
            for r in 0..=d {
                ders[q][r] *= factor;
            }
            factor *= (d - q) as f64;
        }
        ders
    }
}

impl Basis for BSplineBasis {
    fn len(&self) -> usize {
        self.len
    }

    fn domain(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    fn eval_into(&self, t: f64, deriv: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output buffer length mismatch");
        out.fill(0.0);
        let t = t.clamp(self.a, self.b);
        let span = self.find_span(t);
        let d = self.degree();
        if deriv > d {
            // derivative of order above the degree is identically zero
            return;
        }
        if deriv == 0 {
            let vals = self.basis_funs(span, t);
            for (r, &v) in vals.iter().enumerate() {
                out[span - d + r] = v;
            }
        } else {
            let ders = self.ders_basis_funs(span, t, deriv);
            for (r, &v) in ders[deriv].iter().enumerate() {
                out[span - d + r] = v;
            }
        }
    }

    fn penalty(&self, q: usize) -> Matrix {
        let l = self.len;
        let mut r = Matrix::zeros(l, l);
        let d = self.degree();
        if q > d {
            return r; // D^q φ ≡ 0
        }
        // Integrate exactly over every non-empty knot span.
        let n_nodes = (self.order - q).max(1);
        let mut buf = vec![0.0; l];
        for span in d..self.len {
            let (lo, hi) = (self.knots[span], self.knots[span + 1]);
            if hi <= lo {
                continue;
            }
            let rule = gauss_legendre_on(n_nodes, lo, hi);
            for (&x, &w) in rule.nodes.iter().zip(&rule.weights) {
                self.eval_into(x, q, &mut buf);
                // only indices span-d ..= span are non-zero
                for j in (span - d)..=span {
                    let bj = buf[j];
                    if bj == 0.0 {
                        continue;
                    }
                    for m in (span - d)..=span {
                        r[(j, m)] += w * bj * buf[m];
                    }
                }
            }
        }
        r
    }

    fn name(&self) -> &'static str {
        "bspline"
    }

    fn snapshot(&self) -> Option<crate::snapshot::BasisSnapshot> {
        // Boundary knots are implied by (a, b, order); the interior knots
        // are the stored state with_interior_knots rebuilds exactly.
        Some(crate::snapshot::BasisSnapshot::BSpline {
            a: self.a,
            b: self.b,
            order: self.order,
            interior: self.knots[self.order..self.len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cubic(len: usize) -> BSplineBasis {
        BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap()
    }

    #[test]
    fn construction_validations() {
        assert!(BSplineBasis::uniform(0.0, 1.0, 3, 4).is_err()); // len < order
        assert!(BSplineBasis::uniform(1.0, 0.0, 8, 4).is_err());
        assert!(BSplineBasis::uniform(0.0, 1.0, 8, 0).is_err());
        assert!(BSplineBasis::uniform(f64::NAN, 1.0, 8, 4).is_err());
        let b = cubic(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.order(), 4);
        assert_eq!(b.degree(), 3);
        assert_eq!(b.knots().len(), 14);
    }

    #[test]
    fn knot_vector_structure() {
        let b = cubic(6); // 2 interior knots at 1/3, 2/3
        let k = b.knots();
        assert_eq!(k.len(), 10);
        assert_eq!(&k[..4], &[0.0; 4]);
        assert_eq!(&k[6..], &[1.0; 4]);
        assert!((k[4] - 1.0 / 3.0).abs() < 1e-12);
        assert!((k[5] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partition_of_unity() {
        let b = cubic(9);
        for i in 0..=100 {
            let t = i as f64 / 100.0;
            let vals = b.eval(t, 0);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "t={t}: sum={s}");
            assert!(
                vals.iter().all(|&v| v >= -1e-14),
                "negative basis value at t={t}"
            );
        }
    }

    #[test]
    fn local_support() {
        let b = cubic(10);
        // At most `order` non-zero values anywhere.
        for i in 0..=50 {
            let t = i as f64 / 50.0;
            let nz = b.eval(t, 0).iter().filter(|&&v| v.abs() > 1e-14).count();
            assert!(nz <= 4, "t={t}: {nz} non-zero");
        }
    }

    #[test]
    fn endpoint_interpolation() {
        // Open knot vector: first/last basis functions are 1 at the endpoints.
        let b = cubic(7);
        let v0 = b.eval(0.0, 0);
        assert!((v0[0] - 1.0).abs() < 1e-12);
        assert!(v0[1..].iter().all(|&v| v.abs() < 1e-12));
        let v1 = b.eval(1.0, 0);
        assert!((v1[6] - 1.0).abs() < 1e-12);
        assert!(v1[..6].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn bernstein_special_case() {
        // L = k = 3 on [0,1]: quadratic Bernstein polynomials.
        let b = BSplineBasis::uniform(0.0, 1.0, 3, 3).unwrap();
        let t = 0.4;
        let vals = b.eval(t, 0);
        assert!((vals[0] - (1.0 - t) * (1.0 - t)).abs() < 1e-12);
        assert!((vals[1] - 2.0 * t * (1.0 - t)).abs() < 1e-12);
        assert!((vals[2] - t * t).abs() < 1e-12);
    }

    #[test]
    fn derivatives_sum_to_zero() {
        // D of a partition of unity is zero: Σ D^q φ_l = 0 for q >= 1.
        let b = cubic(11);
        for q in 1..=3 {
            for i in 1..20 {
                let t = i as f64 / 20.0;
                let s: f64 = b.eval(t, q).iter().sum();
                assert!(s.abs() < 1e-9, "q={q} t={t}: {s}");
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let b = cubic(8);
        let h = 1e-6;
        for &t in &[0.13, 0.37, 0.61, 0.89] {
            let v_plus = b.eval(t + h, 0);
            let v_minus = b.eval(t - h, 0);
            let d = b.eval(t, 1);
            for l in 0..b.len() {
                let fd = (v_plus[l] - v_minus[l]) / (2.0 * h);
                assert!(
                    (d[l] - fd).abs() < 1e-5 * (1.0 + d[l].abs()),
                    "t={t} l={l}: analytic {} vs fd {}",
                    d[l],
                    fd
                );
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let b = cubic(8);
        let h = 1e-4;
        for &t in &[0.21, 0.52, 0.77] {
            let v_plus = b.eval(t + h, 0);
            let v0 = b.eval(t, 0);
            let v_minus = b.eval(t - h, 0);
            let d2 = b.eval(t, 2);
            for l in 0..b.len() {
                let fd = (v_plus[l] - 2.0 * v0[l] + v_minus[l]) / (h * h);
                assert!(
                    (d2[l] - fd).abs() < 1e-3 * (1.0 + d2[l].abs()),
                    "t={t} l={l}: analytic {} vs fd {}",
                    d2[l],
                    fd
                );
            }
        }
    }

    #[test]
    fn derivative_above_degree_is_zero() {
        let b = cubic(8);
        let v = b.eval(0.5, 4);
        assert!(v.iter().all(|&x| x == 0.0));
        let v = b.eval(0.5, 10);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn spline_reproduces_linear_functions() {
        // Coefficients at the Greville abscissae reproduce f(t) = t exactly.
        let b = cubic(9);
        let d = b.degree();
        let greville: Vec<f64> = (0..b.len())
            .map(|l| b.knots()[l + 1..l + 1 + d].iter().sum::<f64>() / d as f64)
            .collect();
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            let vals = b.eval(t, 0);
            let f: f64 = vals.iter().zip(&greville).map(|(v, g)| v * g).sum();
            assert!((f - t).abs() < 1e-12, "t={t}: {f}");
        }
    }

    #[test]
    fn penalty_is_symmetric_psd() {
        let b = cubic(8);
        for q in 0..=2 {
            let r = b.penalty(q);
            assert_eq!(r.shape(), (8, 8));
            assert!(r.asymmetry() < 1e-10, "q={q}");
            let e = mfod_linalg::eigen::jacobi_eigen(&r).unwrap();
            assert!(
                e.values.iter().all(|&v| v > -1e-9),
                "q={q}: negative eigenvalue {:?}",
                e.values
            );
        }
    }

    #[test]
    fn penalty_order_zero_is_gram_matrix() {
        // For q=0 the penalty is the Gram matrix ∫φ_j φ_m; trace equals
        // Σ ∫ φ_l² > 0 and row sums integrate the partition of unity: Σ_jm
        // R[j,m] = ∫ (Σφ)² = |domain| = 1.
        let b = cubic(8);
        let r = b.penalty(0);
        let total: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| r[(i, j)])
            .sum();
        assert!((total - 1.0).abs() < 1e-10, "total={total}");
    }

    #[test]
    fn penalty_annihilates_constants_for_q1() {
        // D¹ of the constant function Σφ = 1 is 0 ⇒ R₁ 1 = 0.
        let b = cubic(8);
        let r = b.penalty(1);
        let ones = vec![1.0; 8];
        let v = r.matvec(&ones);
        assert!(v.iter().all(|&x| x.abs() < 1e-10), "{v:?}");
    }

    #[test]
    fn penalty_above_degree_is_zero() {
        let b = cubic(8);
        let r = b.penalty(4);
        assert_eq!(r.max_abs(), 0.0);
    }

    #[test]
    fn with_interior_knots_validation() {
        assert!(BSplineBasis::with_interior_knots(0.0, 1.0, &[0.5, 0.2], 4).is_err());
        assert!(BSplineBasis::with_interior_knots(0.0, 1.0, &[0.0], 4).is_err());
        assert!(BSplineBasis::with_interior_knots(0.0, 1.0, &[1.5], 4).is_err());
        let b = BSplineBasis::with_interior_knots(0.0, 1.0, &[0.3, 0.7], 4).unwrap();
        assert_eq!(b.len(), 6);
        // partition of unity still holds
        let s: f64 = b.eval(0.5, 0).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_domain() {
        let b = cubic(6);
        assert_eq!(b.eval(-0.5, 0), b.eval(0.0, 0));
        assert_eq!(b.eval(1.5, 0), b.eval(1.0, 0));
    }

    #[test]
    fn design_matrix_rows_are_evaluations() {
        let b = cubic(6);
        let ts = [0.0, 0.25, 0.5];
        let phi = b.design_matrix(&ts, 0);
        for (j, &t) in ts.iter().enumerate() {
            let row = b.eval(t, 0);
            for l in 0..6 {
                assert_eq!(phi[(j, l)], row[l]);
            }
        }
    }
}
