//! Grid-cached basis selection: the y-independent part of the paper's
//! per-sample, per-channel leave-one-out procedure (Sec. 4.1), computed
//! exactly once per shared observation grid.
//!
//! [`crate::smooth::BasisSelector::select`] ranks a ladder of
//! `(basis size L, λ)` candidates per curve. For every candidate the
//! design matrix `Φ`, the factorized normal equations `ΦᵀΦ + λR`, the hat
//! diagonal `h_jj = ‖L⁻¹φ_j‖²` and the effective degrees of freedom
//! `df = Σ h_jj` depend only on the observation times `ts` — not on the
//! measurements `y`. When a whole batch shares one grid (the usual case:
//! ECG, UCR and the synthetic generators all observe every sample on the
//! same equispaced grid), re-deriving them per curve makes selection
//! O(L³ + mL²) per (sample × channel × candidate).
//!
//! A [`SelectionPlan`] hoists all of that out of the per-curve loop:
//! scoring one curve against one candidate is then a `Φᵀy` pass, two
//! triangular solves and the fitted-values product — O(mL + L²) — plus an
//! O(m) LOOCV/GCV sweep over the **cached** hat diagonal. The plan is the
//! fit-time sibling of [`crate::smooth::FrozenSmoother`]: the smoother
//! freezes one chosen candidate for serving, the plan freezes the whole
//! selection ladder for fitting.
//!
//! ## Exactness
//!
//! The planned path is not an approximation: it executes the same
//! floating-point operations on the same cached intermediates the
//! uncached path derives fresh, so winners, scores, coefficients and
//! diagnostics are **bit-for-bit identical** — `BasisSelector::select`
//! itself delegates to a single-use plan. Candidates whose normal
//! equations are singular are skipped at plan build exactly as the
//! uncached ladder skips them (the factorization is y-independent, so the
//! skip set cannot differ between curves).

use crate::basis::Basis;
use crate::datum::FunctionalDatum;
use crate::error::FdaError;
use crate::smooth::{
    fit_scores, hat_diagonal, BasisSelector, FitDiagnostics, PenalizedLeastSquares,
    SelectionCriterion, SelectionResult,
};
use crate::Result;
use mfod_linalg::{vector, Cholesky, Matrix};
use std::sync::Arc;

/// One `(size, λ)` rung of the ladder with every y-independent quantity
/// precomputed.
struct PlannedCandidate {
    size: usize,
    lambda: f64,
    basis: Arc<dyn Basis>,
    /// `m × L` design matrix on the plan's grid.
    phi: Matrix,
    /// Factorized normal equations `ΦᵀΦ + λR`.
    chol: Cholesky,
    /// Hat diagonal `h_jj = ‖L⁻¹φ_j‖²`, one entry per observation.
    hat_diag: Vec<f64>,
    /// Effective degrees of freedom `Σ h_jj`.
    df: f64,
}

/// The precomputed selection ladder of a [`BasisSelector`] on one fixed
/// observation grid (see the module docs).
pub struct SelectionPlan {
    selector: BasisSelector,
    ts: Vec<f64>,
    candidates: Vec<PlannedCandidate>,
}

impl std::fmt::Debug for SelectionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionPlan")
            .field("points", &self.ts.len())
            .field("candidates", &self.candidates.len())
            .field("criterion", &self.selector.criterion)
            .finish()
    }
}

impl SelectionPlan {
    /// Precomputes the selection ladder of `selector` on the grid `ts`.
    ///
    /// Performs the ts-side validation of [`BasisSelector::select`]
    /// (enough points, finite, non-degenerate domain) and the full
    /// per-candidate assembly; singular candidates are dropped here, and a
    /// plan whose ladder is entirely infeasible (every size larger than
    /// the grid) builds successfully but fails at [`SelectionPlan::select`]
    /// with the uncached path's "no valid candidate" error.
    pub fn build(selector: &BasisSelector, ts: &[f64]) -> Result<Self> {
        if selector.sizes.is_empty() || selector.lambdas.is_empty() {
            return Err(FdaError::InvalidParameter(
                "selector needs at least one size and one lambda".into(),
            ));
        }
        if ts.len() < 2 {
            return Err(FdaError::TooFewPoints {
                got: ts.len(),
                need: 2,
            });
        }
        if !vector::all_finite(ts) {
            return Err(FdaError::NonFinite);
        }
        let a = vector::min(ts);
        let b = vector::max(ts);
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        let mut candidates = Vec::with_capacity(selector.sizes.len() * selector.lambdas.len());
        for &size in &selector.sizes {
            if size > ts.len() {
                continue; // cannot LOOCV an under-determined fit
            }
            let basis: Arc<dyn Basis> = Arc::new(crate::bspline::BSplineBasis::uniform(
                a,
                b,
                size,
                selector.order,
            )?);
            for &lambda in &selector.lambdas {
                let smoother = PenalizedLeastSquares::with_arc(
                    Arc::clone(&basis),
                    lambda,
                    selector.penalty_order,
                )?;
                let (phi, chol) = match smoother.factorize(ts) {
                    Ok(ok) => ok,
                    // A singular candidate is skipped, not fatal: other
                    // (smaller or more penalized) candidates may be fine.
                    Err(FdaError::Linalg(_)) => continue,
                    Err(e) => return Err(e),
                };
                let hat_diag = hat_diagonal(&phi, &chol);
                let df = hat_diag.iter().sum();
                candidates.push(PlannedCandidate {
                    size,
                    lambda,
                    basis: Arc::clone(&basis),
                    phi,
                    chol,
                    hat_diag,
                    df,
                });
            }
        }
        Ok(SelectionPlan {
            selector: selector.clone(),
            ts: ts.to_vec(),
            candidates,
        })
    }

    /// The observation grid this plan is specialized to.
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }

    /// The selector configuration the plan was built from.
    pub fn selector(&self) -> &BasisSelector {
        &self.selector
    }

    /// Number of feasible (non-singular, non-under-determined) candidates
    /// in the precomputed ladder.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Whether `ts` is exactly (bit for bit) the plan's grid. Selection
    /// through a plan is only valid on the grid it was built for, so the
    /// comparison is deliberately exact — a tolerance here could silently
    /// score a curve against the wrong design matrix.
    pub fn same_grid(&self, ts: &[f64]) -> bool {
        self.ts.len() == ts.len()
            && self
                .ts
                .iter()
                .zip(ts)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Whether this plan can stand in for `selector.select(ts, _)`: the
    /// selector configurations are equal and the grid matches bit for bit.
    pub fn covers(&self, selector: &BasisSelector, ts: &[f64]) -> bool {
        self.selector == *selector && self.same_grid(ts)
    }

    /// Selects the best candidate for one curve of measurements taken at
    /// the plan's grid — bit-identical to `selector.select(ts, ys)` on
    /// the grid the plan was built for.
    ///
    /// The ladder sweep reuses three scratch buffers (`Φᵀy`,
    /// coefficients, fitted values) across candidates and defers the
    /// winner's datum and diagnostics materialization to the end, so
    /// steady-state per-curve selection — the exact-mode streaming hot
    /// path, one call per (window × channel) — performs no per-candidate
    /// allocations. The floating-point operations, their order, the
    /// per-candidate coefficient-finiteness validation and the
    /// strict-improvement winner rule are unchanged, so results stay
    /// bit-for-bit identical to the allocating sweep.
    pub fn select(&self, ys: &[f64]) -> Result<SelectionResult> {
        if ys.len() != self.ts.len() {
            return Err(FdaError::LengthMismatch {
                t_len: self.ts.len(),
                y_len: ys.len(),
            });
        }
        if !vector::all_finite(ys) {
            return Err(FdaError::NonFinite);
        }
        let mut xty = Vec::new();
        let mut coefs = Vec::new();
        let mut fitted = Vec::new();
        let mut best_coefs = Vec::new();
        // (candidate index, score, rss, loocv, gcv) of the running winner
        let mut best: Option<(usize, f64, f64, f64, f64)> = None;
        for (ci, cand) in self.candidates.iter().enumerate() {
            // α = (ΦᵀΦ + λR)⁻¹ Φᵀy through the cached factorization: the
            // identical solve the uncached fit performs, minus the O(L³)
            // re-factorization and O(mL²) hat-diagonal work per curve.
            cand.phi.tr_matvec_into(ys, &mut xty);
            cand.chol.solve_into(&xty, &mut coefs);
            // the coefficient validation `FunctionalDatum::new` performs,
            // at the same point in the sweep (the length always matches
            // the basis by construction)
            if !vector::all_finite(&coefs) {
                return Err(FdaError::NonFinite);
            }
            cand.phi.matvec_into(&coefs, &mut fitted);
            let (rss, loocv, gcv) = fit_scores(ys, &fitted, &cand.hat_diag, cand.df);
            let score = match self.selector.criterion {
                SelectionCriterion::Loocv => loocv,
                SelectionCriterion::Gcv => gcv,
            };
            if !score.is_finite() {
                continue;
            }
            let better = best.as_ref().is_none_or(|&(_, b, _, _, _)| score < b);
            if better {
                best = Some((ci, score, rss, loocv, gcv));
                best_coefs.clear();
                best_coefs.extend_from_slice(&coefs);
            }
        }
        let Some((ci, score, rss, loocv, gcv)) = best else {
            return Err(FdaError::InvalidParameter(
                "no selector candidate produced a valid fit".into(),
            ));
        };
        let cand = &self.candidates[ci];
        let datum = FunctionalDatum::new(Arc::clone(&cand.basis), best_coefs)?;
        Ok(SelectionResult {
            datum,
            size: cand.size,
            lambda: cand.lambda,
            score,
            diagnostics: FitDiagnostics {
                rss,
                df: cand.df,
                loocv,
                gcv,
                hat_diag: cand.hat_diag.clone(),
            },
        })
    }
}

/// Capacity of the process-wide plan cache. Plans are a few hundred
/// kilobytes for ECG-sized ladders; a serving process sees a handful of
/// distinct `(selector, grid)` pairs, so a small LRU covers them all.
const PLAN_CACHE_CAPACITY: usize = 16;

/// One cache slot: the `(selector, grid)` key hash and the shared plan.
type CachedPlan = (u64, Arc<SelectionPlan>);

/// LRU order: front = most recently used.
type PlanLru = std::collections::VecDeque<CachedPlan>;

/// Process-wide LRU of built selection plans, keyed by the FNV hash of
/// the selector fingerprint and the grid bit patterns. Hash collisions
/// are harmless: every hit re-checks [`SelectionPlan::covers`] before
/// the plan is returned.
static PLAN_CACHE: std::sync::OnceLock<std::sync::Mutex<PlanLru>> = std::sync::OnceLock::new();

/// Stable cache key of a `(selector, grid)` pair: the selector
/// configuration and every abscissa hashed by bit pattern, reusing the
/// snapshot subsystem's FNV hasher so grid identity means the same thing
/// here and on disk.
fn plan_cache_key(selector: &BasisSelector, ts: &[f64]) -> u64 {
    let mut h = mfod_persist::Fnv1a::new();
    h.update_usize(selector.sizes.len());
    for &s in &selector.sizes {
        h.update_usize(s);
    }
    h.update_f64s(&selector.lambdas);
    h.update_usize(selector.order);
    h.update_usize(selector.penalty_order);
    h.update_u64(match selector.criterion {
        SelectionCriterion::Loocv => 0,
        SelectionCriterion::Gcv => 1,
    });
    h.update_f64s(ts);
    h.finish()
}

impl BasisSelector {
    /// [`BasisSelector::plan`] through the process-wide plan cache:
    /// repeated `fit` calls on the same grid (e.g. the Fig. 3 repetition
    /// loops, or per-batch scoring plans) reuse one built ladder instead
    /// of re-deriving it per call.
    ///
    /// The returned plan is shared ([`Arc`]) and immutable; since a plan
    /// produces bit-identical selections wherever it is reused, caching
    /// cannot change any result. Build errors are not cached — a failing
    /// `(selector, grid)` pair fails identically on every call.
    ///
    /// With `MFOD_OBS=1` (see `mfod-obs`) the cache reports hit / miss /
    /// eviction counts and plan-build latency to the global recorder.
    pub fn plan_shared(&self, ts: &[f64]) -> Result<Arc<SelectionPlan>> {
        let key = plan_cache_key(self, ts);
        let cache = PLAN_CACHE.get_or_init(Default::default);
        let obs = mfod_obs::active();
        {
            let mut lru = cache.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(pos) = lru
                .iter()
                .position(|(k, plan)| *k == key && plan.covers(self, ts))
            {
                let hit = lru.remove(pos).expect("position came from iter");
                let plan = Arc::clone(&hit.1);
                lru.push_front(hit);
                if let Some(m) = obs {
                    m.plan_cache_hits.add(1);
                }
                return Ok(plan);
            }
        }
        // Build outside the lock: plan assembly is the expensive part and
        // a racing duplicate build is merely wasted work, never wrong.
        let built_at = obs.map(|_| std::time::Instant::now());
        let plan = Arc::new(SelectionPlan::build(self, ts)?);
        if let (Some(m), Some(t)) = (obs, built_at) {
            m.plan_cache_misses.add(1);
            m.plan_build.record_duration(t.elapsed());
        }
        let mut lru = cache.lock().unwrap_or_else(|p| p.into_inner());
        lru.push_front((key, Arc::clone(&plan)));
        let over = lru.len().saturating_sub(PLAN_CACHE_CAPACITY);
        if over > 0 {
            if let Some(m) = obs {
                m.plan_cache_evictions.add(over as u64);
            }
            lru.truncate(PLAN_CACHE_CAPACITY);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(m: usize, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let ys: Vec<f64> = ts
            .iter()
            .enumerate()
            .map(|(j, &t)| {
                let n = ((j as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                (std::f64::consts::TAU * t).sin() + noise * n
            })
            .collect();
        (ts, ys)
    }

    fn assert_results_bit_equal(a: &SelectionResult, b: &SelectionResult) {
        assert_eq!(a.size, b.size);
        assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.datum.coefs().len(), b.datum.coefs().len());
        for (x, y) in a.datum.coefs().iter().zip(b.datum.coefs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.diagnostics.rss.to_bits(), b.diagnostics.rss.to_bits());
        assert_eq!(a.diagnostics.df.to_bits(), b.diagnostics.df.to_bits());
        assert_eq!(a.diagnostics.loocv.to_bits(), b.diagnostics.loocv.to_bits());
        assert_eq!(a.diagnostics.gcv.to_bits(), b.diagnostics.gcv.to_bits());
    }

    #[test]
    fn planned_selection_is_bit_identical_to_uncached() {
        let (ts, _) = sine_data(50, 0.0);
        let sel = BasisSelector {
            sizes: vec![6, 8, 10, 12],
            lambdas: vec![1e-8, 1e-3],
            ..BasisSelector::default()
        };
        let plan = sel.plan(&ts).unwrap();
        assert_eq!(plan.candidate_count(), 8);
        assert!(plan.same_grid(&ts));
        assert!(plan.covers(&sel, &ts));
        assert!(format!("{plan:?}").contains("SelectionPlan"));
        // several curves through one plan
        for curve in 0..5 {
            let ys: Vec<f64> = ts
                .iter()
                .enumerate()
                .map(|(j, &t)| {
                    let n = ((j as f64 * 7.77 + curve as f64).sin() * 1357.9).fract() - 0.5;
                    (std::f64::consts::TAU * t * (1.0 + curve as f64 * 0.1)).sin() + 0.2 * n
                })
                .collect();
            let unplanned = sel.select(&ts, &ys).unwrap();
            let planned = plan.select(&ys).unwrap();
            let with_plan = sel.select_with_plan(&plan, &ts, &ys).unwrap();
            assert_results_bit_equal(&unplanned, &planned);
            assert_results_bit_equal(&unplanned, &with_plan);
        }
    }

    #[test]
    fn select_with_plan_falls_back_on_foreign_grid() {
        let (ts, ys) = sine_data(40, 0.1);
        let sel = BasisSelector::default();
        // plan on a *different* grid with the same domain
        let other: Vec<f64> = (0..45).map(|j| (j as f64 / 44.0).powf(1.1)).collect();
        let plan = sel.plan(&other).unwrap();
        assert!(!plan.same_grid(&ts));
        let via_fallback = sel.select_with_plan(&plan, &ts, &ys).unwrap();
        let direct = sel.select(&ts, &ys).unwrap();
        assert_results_bit_equal(&direct, &via_fallback);
    }

    #[test]
    fn select_with_plan_falls_back_on_foreign_selector() {
        let (ts, ys) = sine_data(40, 0.1);
        let plan = BasisSelector::default().plan(&ts).unwrap();
        let gcv = BasisSelector {
            criterion: SelectionCriterion::Gcv,
            ..BasisSelector::default()
        };
        assert!(!plan.covers(&gcv, &ts));
        let via_fallback = gcv.select_with_plan(&plan, &ts, &ys).unwrap();
        let direct = gcv.select(&ts, &ys).unwrap();
        assert_results_bit_equal(&direct, &via_fallback);
    }

    #[test]
    fn plan_validates_inputs() {
        let sel = BasisSelector::default();
        assert!(matches!(
            sel.plan(&[0.0]),
            Err(FdaError::TooFewPoints { .. })
        ));
        assert!(matches!(
            sel.plan(&[0.0, f64::NAN]),
            Err(FdaError::NonFinite)
        ));
        assert!(matches!(
            sel.plan(&[1.0, 1.0, 1.0]),
            Err(FdaError::InvalidDomain { .. })
        ));
        let empty = BasisSelector {
            sizes: vec![],
            ..BasisSelector::default()
        };
        assert!(matches!(
            empty.plan(&[0.0, 1.0]),
            Err(FdaError::InvalidParameter(_))
        ));
        let (ts, _) = sine_data(30, 0.0);
        let plan = sel.plan(&ts).unwrap();
        assert!(matches!(
            plan.select(&[1.0, 2.0]),
            Err(FdaError::LengthMismatch { .. })
        ));
        assert!(matches!(
            plan.select(&vec![f64::NAN; 30]),
            Err(FdaError::NonFinite)
        ));
    }

    #[test]
    fn infeasible_ladder_fails_at_select_like_the_uncached_path() {
        // every size larger than the grid: the plan builds (empty ladder)
        // and selection reports the uncached path's error
        let sel = BasisSelector {
            sizes: vec![50],
            ..BasisSelector::default()
        };
        let ts = [0.0, 0.5, 1.0];
        let plan = sel.plan(&ts).unwrap();
        assert_eq!(plan.candidate_count(), 0);
        assert!(matches!(
            plan.select(&[0.0, 1.0, 0.0]),
            Err(FdaError::InvalidParameter(_))
        ));
        assert!(sel.select(&ts, &[0.0, 1.0, 0.0]).is_err());
    }

    #[test]
    fn plan_shared_reuses_one_plan_per_grid() {
        // a grid unique to this test so parallel tests cannot evict it
        let ts: Vec<f64> = (0..41).map(|j| (j as f64 / 40.0).powf(1.000_173)).collect();
        let sel = BasisSelector::default();
        let p1 = sel.plan_shared(&ts).unwrap();
        let p2 = sel.plan_shared(&ts).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second call must hit the cache");
        // a different grid or selector misses
        let other: Vec<f64> = ts.iter().map(|t| t + 1e-9).collect();
        let p3 = sel.plan_shared(&other).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        let gcv = BasisSelector {
            criterion: SelectionCriterion::Gcv,
            ..BasisSelector::default()
        };
        let p4 = gcv.plan_shared(&ts).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p4));
        // cached plans select bit-identically to a fresh uncached build
        let ys: Vec<f64> = ts.iter().map(|&t| (5.0 * t).sin()).collect();
        let cached = p2.select(&ys).unwrap();
        let fresh = sel.select(&ts, &ys).unwrap();
        assert_results_bit_equal(&cached, &fresh);
        // build errors surface unchanged
        assert!(sel.plan_shared(&[0.0]).is_err());
    }

    #[test]
    fn plan_accessors_expose_build_inputs() {
        let (ts, _) = sine_data(25, 0.0);
        let sel = BasisSelector::default();
        let plan = sel.plan(&ts).unwrap();
        assert_eq!(plan.ts(), &ts[..]);
        assert_eq!(plan.selector(), &sel);
    }
}
