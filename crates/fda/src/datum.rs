//! Functional data containers: raw measurements and fitted basis expansions,
//! in both univariate (UFD) and multivariate (MFD) flavors.

use crate::basis::Basis;
use crate::error::FdaError;
use crate::grid::Grid;
use crate::Result;
use mfod_linalg::{vector, Matrix};
use std::sync::Arc;

/// Raw (possibly noisy, possibly sparse) measurements of a single channel:
/// `y_j ≈ x(t_j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RawCurve {
    /// Measurement abscissae (strictly increasing).
    pub t: Vec<f64>,
    /// Measured values, same length as `t`.
    pub y: Vec<f64>,
}

impl RawCurve {
    /// Creates and validates a raw curve.
    pub fn new(t: Vec<f64>, y: Vec<f64>) -> Result<Self> {
        if t.len() != y.len() {
            return Err(FdaError::LengthMismatch {
                t_len: t.len(),
                y_len: y.len(),
            });
        }
        if t.len() < 2 {
            return Err(FdaError::TooFewPoints {
                got: t.len(),
                need: 2,
            });
        }
        if !vector::all_finite(&t) || !vector::all_finite(&y) {
            return Err(FdaError::NonFinite);
        }
        for w in t.windows(2) {
            if w[0] >= w[1] {
                return Err(FdaError::InvalidAbscissae(
                    "measurement abscissae must be strictly increasing".into(),
                ));
            }
        }
        Ok(RawCurve { t, y })
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Always false for validated curves.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Observation domain `[t_1, t_m]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.t[0], *self.t.last().expect("non-empty"))
    }
}

/// Raw measurements of a `p`-channel multivariate functional sample sharing
/// a common set of abscissae.
///
/// The paper allows per-sample abscissae `t_{i•}` (Sec. 2); channels of one
/// sample, however, come from synchronized sensors and share them.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSample {
    /// Shared measurement abscissae (strictly increasing).
    pub t: Vec<f64>,
    /// One measurement vector per channel, each of `t.len()` values.
    pub channels: Vec<Vec<f64>>,
}

impl RawSample {
    /// Creates and validates a raw multivariate sample.
    pub fn new(t: Vec<f64>, channels: Vec<Vec<f64>>) -> Result<Self> {
        if channels.is_empty() {
            return Err(FdaError::ChannelMismatch(
                "sample must have >= 1 channel".into(),
            ));
        }
        if t.len() < 2 {
            return Err(FdaError::TooFewPoints {
                got: t.len(),
                need: 2,
            });
        }
        if !vector::all_finite(&t) {
            return Err(FdaError::NonFinite);
        }
        for w in t.windows(2) {
            if w[0] >= w[1] {
                return Err(FdaError::InvalidAbscissae(
                    "measurement abscissae must be strictly increasing".into(),
                ));
            }
        }
        for (k, c) in channels.iter().enumerate() {
            if c.len() != t.len() {
                return Err(FdaError::ChannelMismatch(format!(
                    "channel {k} has {} values but there are {} abscissae",
                    c.len(),
                    t.len()
                )));
            }
            if !vector::all_finite(c) {
                return Err(FdaError::NonFinite);
            }
        }
        Ok(RawSample { t, channels })
    }

    /// Wraps a univariate curve as a 1-channel sample.
    pub fn from_univariate(curve: RawCurve) -> Self {
        RawSample {
            t: curve.t,
            channels: vec![curve.y],
        }
    }

    /// Number of channels `p`.
    pub fn dim(&self) -> usize {
        self.channels.len()
    }

    /// Number of measurement points `m`.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Always false for validated samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Observation domain `[t_1, t_m]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.t[0], *self.t.last().expect("non-empty"))
    }

    /// Returns a new sample with an extra channel derived point-wise from an
    /// existing one — e.g. the paper's UFD → MFD augmentation that appends
    /// the squared series (Sec. 4.1):
    ///
    /// ```
    /// # use mfod_fda::datum::{RawCurve, RawSample};
    /// let s = RawSample::from_univariate(
    ///     RawCurve::new(vec![0.0, 0.5, 1.0], vec![1.0, 2.0, 3.0]).unwrap(),
    /// );
    /// let bivariate = s.augment_with(0, |y| y * y).unwrap();
    /// assert_eq!(bivariate.dim(), 2);
    /// assert_eq!(bivariate.channels[1], vec![1.0, 4.0, 9.0]);
    /// ```
    pub fn augment_with(&self, channel: usize, f: impl Fn(f64) -> f64) -> Result<Self> {
        let src = self.channels.get(channel).ok_or_else(|| {
            FdaError::ChannelMismatch(format!(
                "channel {channel} out of range (p = {})",
                self.dim()
            ))
        })?;
        let derived: Vec<f64> = src.iter().map(|&y| f(y)).collect();
        if !vector::all_finite(&derived) {
            return Err(FdaError::NonFinite);
        }
        let mut channels = self.channels.clone();
        channels.push(derived);
        Ok(RawSample {
            t: self.t.clone(),
            channels,
        })
    }

    /// Borrows channel `k` as a [`RawCurve`]-style `(t, y)` pair.
    pub fn channel(&self, k: usize) -> Option<(&[f64], &[f64])> {
        self.channels
            .get(k)
            .map(|c| (self.t.as_slice(), c.as_slice()))
    }
}

/// A fitted univariate functional datum: a basis expansion
/// `x̃(t) = Σ_l α_l φ_l(t)` supporting analytic derivatives of any order.
#[derive(Clone)]
pub struct FunctionalDatum {
    basis: Arc<dyn Basis>,
    coefs: Vec<f64>,
}

impl std::fmt::Debug for FunctionalDatum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionalDatum")
            .field("basis", &self.basis.name())
            .field("len", &self.coefs.len())
            .finish()
    }
}

impl FunctionalDatum {
    /// Wraps a coefficient vector over a basis.
    pub fn new(basis: Arc<dyn Basis>, coefs: Vec<f64>) -> Result<Self> {
        if coefs.len() != basis.len() {
            return Err(FdaError::InvalidParameter(format!(
                "coefficient vector length {} != basis size {}",
                coefs.len(),
                basis.len()
            )));
        }
        if !vector::all_finite(&coefs) {
            return Err(FdaError::NonFinite);
        }
        Ok(FunctionalDatum { basis, coefs })
    }

    /// The underlying basis.
    pub fn basis(&self) -> &Arc<dyn Basis> {
        &self.basis
    }

    /// The expansion coefficients.
    pub fn coefs(&self) -> &[f64] {
        &self.coefs
    }

    /// Domain `[a, b]` of the datum.
    pub fn domain(&self) -> (f64, f64) {
        self.basis.domain()
    }

    /// Evaluates the function at `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.eval_deriv(t, 0)
    }

    /// Evaluates the `d`-th derivative at `t` (Eq. 2 of the paper: the
    /// derivative of the expansion is the expansion of basis derivatives).
    pub fn eval_deriv(&self, t: f64, d: usize) -> f64 {
        let vals = self.basis.eval(t, d);
        vector::dot(&self.coefs, &vals)
    }

    /// Evaluates the function on a grid.
    pub fn eval_grid(&self, grid: &Grid) -> Vec<f64> {
        grid.iter().map(|t| self.eval(t)).collect()
    }

    /// Evaluates the `d`-th derivative on a grid.
    pub fn eval_grid_deriv(&self, grid: &Grid, d: usize) -> Vec<f64> {
        grid.iter().map(|t| self.eval_deriv(t, d)).collect()
    }
}

/// A fitted multivariate functional datum: `p` channels over a common
/// domain, viewed as a path `X(t) ∈ R^p` (the geometric standpoint of
/// Sec. 3).
#[derive(Debug, Clone)]
pub struct MultiFunctionalDatum {
    channels: Vec<FunctionalDatum>,
}

impl MultiFunctionalDatum {
    /// Bundles fitted channels; all domains must agree (within 1e-9 relative
    /// tolerance).
    pub fn new(channels: Vec<FunctionalDatum>) -> Result<Self> {
        if channels.is_empty() {
            return Err(FdaError::ChannelMismatch(
                "need at least one channel".into(),
            ));
        }
        let (a0, b0) = channels[0].domain();
        let tol = 1e-9 * (b0 - a0).abs().max(1.0);
        for (k, c) in channels.iter().enumerate().skip(1) {
            let (a, b) = c.domain();
            if (a - a0).abs() > tol || (b - b0).abs() > tol {
                return Err(FdaError::ChannelMismatch(format!(
                    "channel {k} domain [{a}, {b}] differs from [{a0}, {b0}]"
                )));
            }
        }
        Ok(MultiFunctionalDatum { channels })
    }

    /// Wraps a single channel.
    pub fn from_univariate(datum: FunctionalDatum) -> Self {
        MultiFunctionalDatum {
            channels: vec![datum],
        }
    }

    /// Number of channels `p`.
    pub fn dim(&self) -> usize {
        self.channels.len()
    }

    /// Common domain.
    pub fn domain(&self) -> (f64, f64) {
        self.channels[0].domain()
    }

    /// Borrow the channels.
    pub fn channels(&self) -> &[FunctionalDatum] {
        &self.channels
    }

    /// Borrow one channel.
    pub fn channel(&self, k: usize) -> Option<&FunctionalDatum> {
        self.channels.get(k)
    }

    /// Evaluates the path position `X(t) ∈ R^p`.
    pub fn eval_point(&self, t: f64) -> Vec<f64> {
        self.channels.iter().map(|c| c.eval(t)).collect()
    }

    /// Evaluates the `d`-th derivative `D^d X(t) ∈ R^p`.
    pub fn eval_deriv_point(&self, t: f64, d: usize) -> Vec<f64> {
        self.channels.iter().map(|c| c.eval_deriv(t, d)).collect()
    }

    /// Evaluates on a grid into an `m x p` matrix (rows = grid points).
    pub fn eval_grid(&self, grid: &Grid) -> Matrix {
        self.eval_grid_deriv(grid, 0)
    }

    /// Evaluates the `d`-th derivative on a grid into an `m x p` matrix.
    pub fn eval_grid_deriv(&self, grid: &Grid, d: usize) -> Matrix {
        let mut out = Matrix::zeros(grid.len(), self.dim());
        for (j, t) in grid.iter().enumerate() {
            for (k, c) in self.channels.iter().enumerate() {
                out[(j, k)] = c.eval_deriv(t, d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bspline::BSplineBasis;
    use crate::polynomial::PolynomialBasis;

    fn linear_datum(slope: f64, intercept: f64) -> FunctionalDatum {
        // exact representation in the monomial basis on [0, 1]
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        FunctionalDatum::new(basis, vec![intercept, slope]).unwrap()
    }

    #[test]
    fn raw_curve_validation() {
        assert!(RawCurve::new(vec![0.0, 1.0], vec![1.0, 2.0]).is_ok());
        assert!(RawCurve::new(vec![0.0], vec![1.0]).is_err());
        assert!(RawCurve::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(RawCurve::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(RawCurve::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(RawCurve::new(vec![0.0, 1.0], vec![f64::NAN, 2.0]).is_err());
        let c = RawCurve::new(vec![0.0, 0.5, 1.0], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.domain(), (0.0, 1.0));
    }

    #[test]
    fn raw_sample_validation() {
        assert!(RawSample::new(vec![0.0, 1.0], vec![]).is_err());
        assert!(RawSample::new(vec![0.0, 1.0], vec![vec![1.0]]).is_err());
        assert!(RawSample::new(vec![0.0, 1.0], vec![vec![1.0, f64::NAN]]).is_err());
        let s = RawSample::new(vec![0.0, 1.0], vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let (t, y) = s.channel(1).unwrap();
        assert_eq!(t, &[0.0, 1.0]);
        assert_eq!(y, &[3.0, 4.0]);
        assert!(s.channel(2).is_none());
    }

    #[test]
    fn augmentation_appends_squared_channel() {
        let s = RawSample::from_univariate(
            RawCurve::new(vec![0.0, 0.5, 1.0], vec![-1.0, 2.0, 3.0]).unwrap(),
        );
        let b = s.augment_with(0, |y| y * y).unwrap();
        assert_eq!(b.dim(), 2);
        assert_eq!(b.channels[1], vec![1.0, 4.0, 9.0]);
        // original untouched
        assert_eq!(s.dim(), 1);
        assert!(s.augment_with(3, |y| y).is_err());
        assert!(s.augment_with(0, |y| y.ln()).is_err()); // ln(-1) = NaN
    }

    #[test]
    fn functional_datum_eval_and_derivatives() {
        let d = linear_datum(2.0, 1.0);
        assert!((d.eval(0.25) - 1.5).abs() < 1e-12);
        assert!((d.eval_deriv(0.7, 1) - 2.0).abs() < 1e-12);
        assert_eq!(d.eval_deriv(0.7, 5), 0.0);
        assert_eq!(d.domain(), (0.0, 1.0));
        assert_eq!(d.coefs(), &[1.0, 2.0]);
    }

    #[test]
    fn functional_datum_validation() {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        assert!(FunctionalDatum::new(Arc::clone(&basis), vec![1.0]).is_err());
        assert!(FunctionalDatum::new(basis, vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn grid_evaluation() {
        let d = linear_datum(1.0, 0.0);
        let g = Grid::uniform(0.0, 1.0, 5).unwrap();
        let v = d.eval_grid(&g);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let dv = d.eval_grid_deriv(&g, 1);
        assert!(dv.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn multivariate_path_evaluation() {
        let mfd = MultiFunctionalDatum::new(vec![linear_datum(1.0, 0.0), linear_datum(-2.0, 1.0)])
            .unwrap();
        assert_eq!(mfd.dim(), 2);
        let x = mfd.eval_point(0.5);
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!((x[1] - 0.0).abs() < 1e-12);
        let dx = mfd.eval_deriv_point(0.5, 1);
        assert_eq!(dx, vec![1.0, -2.0]);
        let g = Grid::uniform(0.0, 1.0, 3).unwrap();
        let m = mfd.eval_grid(&g);
        assert_eq!(m.shape(), (3, 2));
        assert!((m[(2, 1)] + 1.0).abs() < 1e-12);
        assert!(mfd.channel(0).is_some());
        assert!(mfd.channel(9).is_none());
    }

    #[test]
    fn multivariate_rejects_domain_mismatch() {
        let a = linear_datum(1.0, 0.0);
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 2.0, 2).unwrap());
        let b = FunctionalDatum::new(basis, vec![0.0, 1.0]).unwrap();
        assert!(MultiFunctionalDatum::new(vec![a, b]).is_err());
        assert!(MultiFunctionalDatum::new(vec![]).is_err());
    }

    #[test]
    fn from_univariate_wrappers() {
        let d = linear_datum(1.0, 0.0);
        let mfd = MultiFunctionalDatum::from_univariate(d);
        assert_eq!(mfd.dim(), 1);
        assert_eq!(mfd.domain(), (0.0, 1.0));
    }

    #[test]
    fn bspline_backed_datum_roundtrip() {
        // Fit noiseless cubic data and check the datum evaluates closely.
        let ts: Vec<f64> = (0..30).map(|j| j as f64 / 29.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| t * t * t).collect();
        let basis = BSplineBasis::uniform(0.0, 1.0, 10, 4).unwrap();
        let fit = crate::smooth::PenalizedLeastSquares::new(basis, 0.0, 2)
            .unwrap()
            .fit(&ts, &ys)
            .unwrap();
        assert!((fit.eval(0.5) - 0.125).abs() < 1e-9);
        assert!((fit.eval_deriv(0.5, 1) - 0.75).abs() < 1e-8);
        assert!((fit.eval_deriv(0.5, 2) - 3.0).abs() < 1e-7);
    }
}
