//! Fourier bases for periodic functional data (the paper's suggested
//! alternative to B-splines when data are periodic, Sec. 2.1).

use crate::basis::Basis;
use crate::error::FdaError;
use crate::Result;
use mfod_linalg::quadrature::gauss_legendre_on;
use mfod_linalg::Matrix;

/// The Fourier basis `{1/√P, √(2/P)·sin(ωt), √(2/P)·cos(ωt),
/// √(2/P)·sin(2ωt), …}` with `ω = 2π / P` and period `P = b − a`.
///
/// The normalization makes the family orthonormal in `L²[a, b]`, so the
/// order-0 penalty matrix is the identity and higher-order penalties are
/// diagonal — both computed analytically.
#[derive(Debug, Clone)]
pub struct FourierBasis {
    len: usize,
    a: f64,
    b: f64,
    omega: f64,
}

impl FourierBasis {
    /// Creates a Fourier basis with `len` functions (must be odd and >= 1 so
    /// sin/cos come in pairs after the constant) on `[a, b]`.
    pub fn new(a: f64, b: f64, len: usize) -> Result<Self> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        if len == 0 || len.is_multiple_of(2) {
            return Err(FdaError::InvalidBasis(format!(
                "fourier basis size must be odd and positive, got {len}"
            )));
        }
        Ok(FourierBasis {
            len,
            a,
            b,
            omega: std::f64::consts::TAU / (b - a),
        })
    }

    /// Fundamental angular frequency `ω = 2π / (b − a)`.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Harmonic number of basis function `l` (0 for the constant, `h` for
    /// the pair `sin(hωt)`, `cos(hωt)`).
    fn harmonic(l: usize) -> usize {
        l.div_ceil(2)
    }
}

impl Basis for FourierBasis {
    fn len(&self) -> usize {
        self.len
    }

    fn domain(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    fn eval_into(&self, t: f64, deriv: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output buffer length mismatch");
        let t = t.clamp(self.a, self.b);
        let p = self.b - self.a;
        let c0 = 1.0 / p.sqrt();
        let cn = (2.0 / p).sqrt();
        out[0] = if deriv == 0 { c0 } else { 0.0 };
        for l in (1..self.len).step_by(2) {
            let h = Self::harmonic(l) as f64;
            let w = h * self.omega;
            let arg = w * (t - self.a);
            let amp = cn * w.powi(deriv as i32);
            // D^q sin = sin(arg + qπ/2); D^q cos = cos(arg + qπ/2)
            let phase = deriv as f64 * std::f64::consts::FRAC_PI_2;
            out[l] = amp * (arg + phase).sin();
            if l + 1 < self.len {
                out[l + 1] = amp * (arg + phase).cos();
            }
        }
    }

    fn penalty(&self, q: usize) -> Matrix {
        // Orthonormal family: ∫ D^q φ_l D^q φ_m = δ_lm (hω)^{2q}
        // for the harmonic pairs; the constant contributes only at q = 0.
        let mut r = Matrix::zeros(self.len, self.len);
        if q == 0 {
            return Matrix::identity(self.len);
        }
        for l in 1..self.len {
            let h = Self::harmonic(l) as f64;
            r[(l, l)] = (h * self.omega).powi(2 * q as i32);
        }
        r
    }

    fn name(&self) -> &'static str {
        "fourier"
    }

    fn snapshot(&self) -> Option<crate::snapshot::BasisSnapshot> {
        Some(crate::snapshot::BasisSnapshot::Fourier {
            a: self.a,
            b: self.b,
            len: self.len,
        })
    }
}

/// Numerically verifies orthonormality of a basis on its domain by composite
/// Gauss–Legendre quadrature — exposed for tests and diagnostics.
pub fn gram_matrix_numeric(basis: &dyn Basis, subintervals: usize, nodes: usize) -> Matrix {
    let (a, b) = basis.domain();
    let l = basis.len();
    let mut g = Matrix::zeros(l, l);
    let mut buf = vec![0.0; l];
    let step = (b - a) / subintervals as f64;
    for s in 0..subintervals {
        let lo = a + step * s as f64;
        let rule = gauss_legendre_on(nodes, lo, lo + step);
        for (&x, &w) in rule.nodes.iter().zip(&rule.weights) {
            basis.eval_into(x, 0, &mut buf);
            for i in 0..l {
                for j in 0..l {
                    g[(i, j)] += w * buf[i] * buf[j];
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validations() {
        assert!(FourierBasis::new(0.0, 1.0, 0).is_err());
        assert!(FourierBasis::new(0.0, 1.0, 4).is_err()); // even
        assert!(FourierBasis::new(1.0, 0.0, 5).is_err());
        assert!(FourierBasis::new(0.0, f64::INFINITY, 5).is_err());
        let b = FourierBasis::new(0.0, 2.0, 7).unwrap();
        assert_eq!(b.len(), 7);
        assert!((b.omega() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn orthonormal_on_domain() {
        let b = FourierBasis::new(0.0, 1.0, 5).unwrap();
        let g = gram_matrix_numeric(&b, 40, 8);
        let err = g.sub(&Matrix::identity(5)).max_abs();
        assert!(err < 1e-10, "gram deviation {err}");
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let b = FourierBasis::new(0.0, 1.0, 7).unwrap();
        let h = 1e-6;
        for &t in &[0.2, 0.5, 0.8] {
            let vp = b.eval(t + h, 0);
            let vm = b.eval(t - h, 0);
            let d = b.eval(t, 1);
            for l in 0..7 {
                let fd = (vp[l] - vm[l]) / (2.0 * h);
                assert!((d[l] - fd).abs() < 1e-4 * (1.0 + d[l].abs()), "l={l}");
            }
        }
    }

    #[test]
    fn second_derivative_is_negative_scaled_function() {
        // D² sin(hωt) = -(hω)² sin(hωt)
        let b = FourierBasis::new(0.0, 1.0, 5).unwrap();
        let t = 0.3;
        let v = b.eval(t, 0);
        let d2 = b.eval(t, 2);
        for l in 1..5 {
            let h = FourierBasis::harmonic(l) as f64;
            let expect = -(h * b.omega()).powi(2) * v[l];
            assert!(
                (d2[l] - expect).abs() < 1e-8 * (1.0 + expect.abs()),
                "l={l}"
            );
        }
        assert_eq!(d2[0], 0.0);
    }

    #[test]
    fn penalty_diagonal_matches_numeric() {
        let b = FourierBasis::new(0.0, 1.0, 5).unwrap();
        let r = b.penalty(2);
        // numeric check of one diagonal entry: ∫ (D²φ₁)² = ω⁴
        let rule = gauss_legendre_on(16, 0.0, 1.0);
        let mut buf = vec![0.0; 5];
        let num: f64 = rule
            .nodes
            .iter()
            .zip(&rule.weights)
            .map(|(&x, &w)| {
                b.eval_into(x, 2, &mut buf);
                w * buf[1] * buf[1]
            })
            .sum();
        assert!((r[(1, 1)] - num).abs() < 1e-6 * num.max(1.0));
        assert_eq!(r[(0, 0)], 0.0);
    }

    #[test]
    fn penalty_q0_is_identity() {
        let b = FourierBasis::new(0.0, 3.0, 9).unwrap();
        let r = b.penalty(0);
        assert!(r.sub(&Matrix::identity(9)).max_abs() < 1e-12);
    }

    #[test]
    fn periodicity_of_values() {
        let b = FourierBasis::new(0.0, 1.0, 5).unwrap();
        let v0 = b.eval(0.0, 0);
        let v1 = b.eval(1.0, 0);
        for l in 0..5 {
            assert!((v0[l] - v1[l]).abs() < 1e-10, "l={l}");
        }
    }
}
