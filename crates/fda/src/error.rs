//! Error type for functional-data operations.

use mfod_linalg::LinalgError;
use std::fmt;

/// Errors produced while representing or smoothing functional data.
#[derive(Debug, Clone, PartialEq)]
pub enum FdaError {
    /// The requested domain `[a, b]` is empty or inverted.
    InvalidDomain {
        /// Left endpoint.
        a: f64,
        /// Right endpoint.
        b: f64,
    },
    /// Fewer observation points than required.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Input contained NaN or infinite values.
    NonFinite,
    /// The basis has more functions than there are observations, making the
    /// unpenalized fit under-determined.
    BasisTooLarge {
        /// Basis size L.
        basis_len: usize,
        /// Number of observations m.
        points: usize,
    },
    /// A basis was requested with an invalid configuration.
    InvalidBasis(String),
    /// Abscissae must be sorted strictly increasing (grids) or lie inside
    /// the basis domain (observations).
    InvalidAbscissae(String),
    /// Observation and abscissa vectors disagree in length.
    LengthMismatch {
        /// Length of `t`.
        t_len: usize,
        /// Length of `y`.
        y_len: usize,
    },
    /// Channels of a multivariate functional datum disagree (domain or count).
    ChannelMismatch(String),
    /// An underlying linear algebra operation failed.
    Linalg(LinalgError),
    /// A hyper-parameter is out of range (e.g. negative λ).
    InvalidParameter(String),
}

impl fmt::Display for FdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdaError::InvalidDomain { a, b } => write!(f, "invalid domain [{a}, {b}]"),
            FdaError::TooFewPoints { got, need } => {
                write!(f, "too few points: got {got}, need at least {need}")
            }
            FdaError::NonFinite => write!(f, "input contains NaN or infinite values"),
            FdaError::BasisTooLarge { basis_len, points } => write!(
                f,
                "basis size {basis_len} exceeds the {points} observation points"
            ),
            FdaError::InvalidBasis(msg) => write!(f, "invalid basis: {msg}"),
            FdaError::InvalidAbscissae(msg) => write!(f, "invalid abscissae: {msg}"),
            FdaError::LengthMismatch { t_len, y_len } => {
                write!(
                    f,
                    "length mismatch: {t_len} abscissae vs {y_len} observations"
                )
            }
            FdaError::ChannelMismatch(msg) => write!(f, "channel mismatch: {msg}"),
            FdaError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            FdaError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for FdaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FdaError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for FdaError {
    fn from(e: LinalgError) -> Self {
        FdaError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(FdaError::InvalidDomain { a: 1.0, b: 0.0 }
            .to_string()
            .contains("[1, 0]"));
        assert!(FdaError::TooFewPoints { got: 2, need: 4 }
            .to_string()
            .contains('4'));
        assert!(FdaError::BasisTooLarge {
            basis_len: 10,
            points: 5
        }
        .to_string()
        .contains("10"));
        let e: FdaError = LinalgError::Empty.into();
        assert!(e.to_string().contains("linear algebra"));
    }

    #[test]
    fn source_chains_linalg() {
        use std::error::Error;
        let e: FdaError = LinalgError::NonFinite.into();
        assert!(e.source().is_some());
        assert!(FdaError::NonFinite.source().is_none());
    }
}
