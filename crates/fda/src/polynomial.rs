//! Global polynomial (monomial) bases on a normalized variable.
//!
//! Mainly useful for testing, very small problems, and as a sanity baseline:
//! monomials are ill-conditioned for large `L` (prefer B-splines there).

use crate::basis::Basis;
use crate::error::FdaError;
use crate::Result;
use mfod_linalg::quadrature::gauss_legendre_on;
use mfod_linalg::Matrix;

/// The monomial basis `{1, u, u², …, u^{L−1}}` in the normalized variable
/// `u = (t − a) / (b − a) ∈ [0, 1]`.
#[derive(Debug, Clone)]
pub struct PolynomialBasis {
    len: usize,
    a: f64,
    b: f64,
}

impl PolynomialBasis {
    /// Creates a monomial basis of `len >= 1` functions on `[a, b]`.
    pub fn new(a: f64, b: f64, len: usize) -> Result<Self> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(FdaError::NonFinite);
        }
        if a >= b {
            return Err(FdaError::InvalidDomain { a, b });
        }
        if len == 0 {
            return Err(FdaError::InvalidBasis(
                "polynomial basis needs len >= 1".into(),
            ));
        }
        Ok(PolynomialBasis { len, a, b })
    }

    /// Highest represented polynomial degree (`len − 1`).
    pub fn degree(&self) -> usize {
        self.len - 1
    }
}

impl Basis for PolynomialBasis {
    fn len(&self) -> usize {
        self.len
    }

    fn domain(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    fn eval_into(&self, t: f64, deriv: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output buffer length mismatch");
        out.fill(0.0);
        let t = t.clamp(self.a, self.b);
        let scale = 1.0 / (self.b - self.a);
        let u = (t - self.a) * scale;
        // D^q u^d = d!/(d-q)! u^{d-q} · scale^q (chain rule)
        let chain = scale.powi(deriv as i32);
        for d in deriv..self.len {
            let mut c = 1.0;
            for j in 0..deriv {
                c *= (d - j) as f64;
            }
            out[d] = c * u.powi((d - deriv) as i32) * chain;
        }
    }

    fn penalty(&self, q: usize) -> Matrix {
        // Integrand is a polynomial of degree ≤ 2(L−1−q); one GL rule over
        // the full domain with L nodes is exact.
        let l = self.len;
        let mut r = Matrix::zeros(l, l);
        if q >= l {
            return r;
        }
        let rule = gauss_legendre_on(l.max(2), self.a, self.b);
        let mut buf = vec![0.0; l];
        for (&x, &w) in rule.nodes.iter().zip(&rule.weights) {
            self.eval_into(x, q, &mut buf);
            for i in 0..l {
                if buf[i] == 0.0 {
                    continue;
                }
                for j in 0..l {
                    r[(i, j)] += w * buf[i] * buf[j];
                }
            }
        }
        r
    }

    fn name(&self) -> &'static str {
        "polynomial"
    }

    fn snapshot(&self) -> Option<crate::snapshot::BasisSnapshot> {
        Some(crate::snapshot::BasisSnapshot::Polynomial {
            a: self.a,
            b: self.b,
            len: self.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validations() {
        assert!(PolynomialBasis::new(0.0, 1.0, 0).is_err());
        assert!(PolynomialBasis::new(1.0, 1.0, 3).is_err());
        assert!(PolynomialBasis::new(0.0, f64::NAN, 3).is_err());
        let b = PolynomialBasis::new(0.0, 2.0, 4).unwrap();
        assert_eq!(b.degree(), 3);
    }

    #[test]
    fn values_are_monomials() {
        let b = PolynomialBasis::new(0.0, 1.0, 4).unwrap();
        let v = b.eval(0.5, 0);
        assert_eq!(v, vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn normalized_variable_respects_domain() {
        let b = PolynomialBasis::new(2.0, 4.0, 3).unwrap();
        let v = b.eval(3.0, 0); // u = 0.5
        assert!((v[1] - 0.5).abs() < 1e-12);
        assert!((v[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn first_derivative_with_chain_rule() {
        // On [0, 2]: u = t/2, D(u²) = 2u · 1/2 = u = t/2.
        let b = PolynomialBasis::new(0.0, 2.0, 3).unwrap();
        let d = b.eval(1.0, 1);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let b = PolynomialBasis::new(0.0, 1.0, 5).unwrap();
        let h = 1e-6;
        for &t in &[0.3, 0.7] {
            let vp = b.eval(t + h, 0);
            let vm = b.eval(t - h, 0);
            let d = b.eval(t, 1);
            for l in 0..5 {
                let fd = (vp[l] - vm[l]) / (2.0 * h);
                assert!((d[l] - fd).abs() < 1e-5 * (1.0 + d[l].abs()));
            }
        }
    }

    #[test]
    fn high_derivatives_vanish() {
        let b = PolynomialBasis::new(0.0, 1.0, 3).unwrap();
        assert!(b.eval(0.5, 3).iter().all(|&v| v == 0.0));
        let r = b.penalty(3);
        assert_eq!(r.max_abs(), 0.0);
    }

    #[test]
    fn penalty_q0_known_entries() {
        // ∫₀¹ u^i u^j du = 1/(i+j+1)
        let b = PolynomialBasis::new(0.0, 1.0, 3).unwrap();
        let r = b.penalty(0);
        for i in 0..3 {
            for j in 0..3 {
                let exact = 1.0 / (i + j + 1) as f64;
                assert!((r[(i, j)] - exact).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn penalty_q2_annihilates_linears() {
        let b = PolynomialBasis::new(0.0, 1.0, 4).unwrap();
        let r = b.penalty(2);
        // coefficients of a linear function: (c0, c1, 0, 0)
        let v = r.matvec(&[3.0, -2.0, 0.0, 0.0]);
        assert!(v.iter().all(|&x| x.abs() < 1e-12));
    }
}
