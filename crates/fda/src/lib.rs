//! # mfod-fda
//!
//! Functional data representation for the `mfod` workspace, implementing
//! Section 2 of Lejeune et al. (EDBT 2020): noisy discrete measurements of a
//! curve are turned into a smooth *basis expansion*
//!
//! ```text
//! x̃(t) = Σ_l α_l φ_l(t)
//! ```
//!
//! whose coefficients are estimated by penalized least squares
//! (`α* = (ΦᵀΦ + λR)⁻¹ Φᵀ y`, Eq. 4 of the paper) so that derivatives of any
//! order can then be evaluated *analytically* (Eq. 2) — which is what the
//! geometric mapping functions of `mfod-geometry` consume.
//!
//! ## Modules
//!
//! * [`grid`] — strictly increasing evaluation grids.
//! * [`basis`] — the [`basis::Basis`] trait and basis-matrix helpers.
//! * [`bspline`] — B-spline bases (Cox–de Boor, arbitrary-order derivatives,
//!   exact Gauss–Legendre penalty matrices).
//! * [`fourier`] — Fourier bases for periodic data.
//! * [`polynomial`] — monomial bases (mostly for testing and tiny problems).
//! * [`smooth`] — the penalized least-squares smoother, LOOCV/GCV
//!   diagnostics and automatic basis-size/λ selection.
//! * [`selcache`] — grid-cached selection plans: the y-independent part of
//!   the selection ladder precomputed once per shared observation grid.
//! * [`datum`] — fitted single- and multi-channel functional data
//!   ([`datum::FunctionalDatum`], [`datum::MultiFunctionalDatum`]) and raw
//!   measurement containers ([`datum::RawCurve`], [`datum::RawSample`]).
//!
//! ## Quickstart
//!
//! ```
//! use mfod_fda::prelude::*;
//!
//! // Noisy samples of sin(2πt) on 40 points.
//! let m = 40;
//! let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
//! let ys: Vec<f64> = ts.iter().map(|t| (std::f64::consts::TAU * t).sin()).collect();
//!
//! let basis = BSplineBasis::uniform(0.0, 1.0, 12, 4).unwrap();
//! let smoother = PenalizedLeastSquares::new(basis, 1e-6, 2).unwrap();
//! let fit = smoother.fit(&ts, &ys).unwrap();
//!
//! // Evaluate the smooth curve and its first derivative anywhere.
//! let x = fit.eval(0.25);
//! let dx = fit.eval_deriv(0.25, 1);
//! assert!((x - 1.0).abs() < 0.05);           // sin(π/2) = 1
//! assert!(dx.abs() < 1.0);                   // derivative ≈ 0 at the crest
//! ```

// Index-based loops are used deliberately in the numeric kernels: the
// loop index mirrors the textbook formulas being implemented.
#![allow(clippy::needless_range_loop)]

pub mod basis;
pub mod bspline;
pub mod datum;
pub mod error;
pub mod fourier;
pub mod grid;
pub mod polynomial;
pub mod selcache;
pub mod smooth;
pub mod snapshot;

pub use basis::Basis;
pub use bspline::BSplineBasis;
pub use datum::{FunctionalDatum, MultiFunctionalDatum, RawCurve, RawSample};
pub use error::FdaError;
pub use fourier::FourierBasis;
pub use grid::Grid;
pub use polynomial::PolynomialBasis;
pub use selcache::SelectionPlan;
pub use smooth::{
    BasisSelector, FitDiagnostics, FrozenSmoother, PenalizedLeastSquares, SelectionCriterion,
    SelectionResult,
};
pub use snapshot::{BasisSnapshot, FrozenSmootherSnapshot};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, FdaError>;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::basis::Basis;
    pub use crate::bspline::BSplineBasis;
    pub use crate::datum::{FunctionalDatum, MultiFunctionalDatum, RawCurve, RawSample};
    pub use crate::error::FdaError;
    pub use crate::fourier::FourierBasis;
    pub use crate::grid::Grid;
    pub use crate::polynomial::PolynomialBasis;
    pub use crate::selcache::SelectionPlan;
    pub use crate::smooth::{
        BasisSelector, FitDiagnostics, FrozenSmoother, PenalizedLeastSquares, SelectionCriterion,
        SelectionResult,
    };
    pub use crate::snapshot::{BasisSnapshot, FrozenSmootherSnapshot};
}
