//! Snapshot forms of the fda layer: basis configurations, the
//! cross-validated selector and frozen smoothing operators.
//!
//! Bases are trait objects at runtime, so persistence goes through a
//! concrete tagged union, [`BasisSnapshot`], produced by the
//! [`Basis::snapshot`] hook (custom bases that do not override the hook
//! simply cannot be persisted — the failure is a typed error at snapshot
//! time, never at encode time). Restoring re-runs the ordinary
//! constructors, so every invariant of a hand-built basis also holds for
//! a restored one, and the rebuilt basis evaluates **bit-identically**:
//! the constructors derive all state deterministically from the stored
//! parameters.

use crate::basis::Basis;
use crate::bspline::BSplineBasis;
use crate::error::FdaError;
use crate::fourier::FourierBasis;
use crate::polynomial::PolynomialBasis;
use crate::smooth::{BasisSelector, FrozenSmoother, SelectionCriterion};
use crate::Result;
use mfod_linalg::Matrix;
use mfod_persist::{Decode, Decoder, Encode, Encoder, PersistError};
use std::sync::Arc;

/// Concrete, persistable form of every basis shipped by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum BasisSnapshot {
    /// An open-uniform-boundary B-spline basis, reconstructed from its
    /// interior knots (boundary knots are implied by `order`).
    BSpline {
        /// Domain start.
        a: f64,
        /// Domain end.
        b: f64,
        /// Spline order `k`.
        order: usize,
        /// Interior knots, strictly inside `(a, b)`.
        interior: Vec<f64>,
    },
    /// A Fourier basis of `len` functions.
    Fourier {
        /// Domain start.
        a: f64,
        /// Domain end.
        b: f64,
        /// Number of basis functions (odd).
        len: usize,
    },
    /// A monomial basis of `len` functions.
    Polynomial {
        /// Domain start.
        a: f64,
        /// Domain end.
        b: f64,
        /// Number of basis functions.
        len: usize,
    },
}

impl BasisSnapshot {
    /// Rebuilds the live basis through its ordinary constructor.
    pub fn restore(&self) -> Result<Arc<dyn Basis>> {
        Ok(match *self {
            BasisSnapshot::BSpline {
                a,
                b,
                order,
                ref interior,
            } => Arc::new(BSplineBasis::with_interior_knots(a, b, interior, order)?),
            BasisSnapshot::Fourier { a, b, len } => Arc::new(FourierBasis::new(a, b, len)?),
            BasisSnapshot::Polynomial { a, b, len } => Arc::new(PolynomialBasis::new(a, b, len)?),
        })
    }
}

/// Takes the snapshot of a dyn basis, failing with a typed error when the
/// implementation does not support persistence.
pub fn snapshot_basis(basis: &dyn Basis) -> Result<BasisSnapshot> {
    basis.snapshot().ok_or_else(|| {
        FdaError::InvalidParameter(format!(
            "basis '{}' does not support snapshots",
            basis.name()
        ))
    })
}

const TAG_BSPLINE: u32 = 1;
const TAG_FOURIER: u32 = 2;
const TAG_POLYNOMIAL: u32 = 3;

impl Encode for BasisSnapshot {
    fn encode(&self, w: &mut Encoder) {
        match self {
            BasisSnapshot::BSpline {
                a,
                b,
                order,
                interior,
            } => {
                w.put_u32(TAG_BSPLINE);
                w.put_f64(*a);
                w.put_f64(*b);
                w.put_usize(*order);
                interior.encode(w);
            }
            BasisSnapshot::Fourier { a, b, len } => {
                w.put_u32(TAG_FOURIER);
                w.put_f64(*a);
                w.put_f64(*b);
                w.put_usize(*len);
            }
            BasisSnapshot::Polynomial { a, b, len } => {
                w.put_u32(TAG_POLYNOMIAL);
                w.put_f64(*a);
                w.put_f64(*b);
                w.put_usize(*len);
            }
        }
    }
}

impl Decode for BasisSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        match r.take_u32()? {
            TAG_BSPLINE => Ok(BasisSnapshot::BSpline {
                a: r.take_f64()?,
                b: r.take_f64()?,
                order: r.take_usize()?,
                interior: Vec::decode(r)?,
            }),
            TAG_FOURIER => Ok(BasisSnapshot::Fourier {
                a: r.take_f64()?,
                b: r.take_f64()?,
                len: r.take_usize()?,
            }),
            TAG_POLYNOMIAL => Ok(BasisSnapshot::Polynomial {
                a: r.take_f64()?,
                b: r.take_f64()?,
                len: r.take_usize()?,
            }),
            tag => Err(PersistError::UnknownTag { what: "basis", tag }),
        }
    }
}

impl Encode for SelectionCriterion {
    fn encode(&self, w: &mut Encoder) {
        w.put_u8(match self {
            SelectionCriterion::Loocv => 0,
            SelectionCriterion::Gcv => 1,
        });
    }
}

impl Decode for SelectionCriterion {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        match r.take_u8()? {
            0 => Ok(SelectionCriterion::Loocv),
            1 => Ok(SelectionCriterion::Gcv),
            tag => Err(PersistError::UnknownTag {
                what: "selection criterion",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for BasisSelector {
    fn encode(&self, w: &mut Encoder) {
        self.sizes.encode(w);
        self.lambdas.encode(w);
        w.put_usize(self.order);
        w.put_usize(self.penalty_order);
        self.criterion.encode(w);
    }
}

impl Decode for BasisSelector {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(BasisSelector {
            sizes: Vec::decode(r)?,
            lambdas: Vec::decode(r)?,
            order: r.take_usize()?,
            penalty_order: r.take_usize()?,
            criterion: SelectionCriterion::decode(r)?,
        })
    }
}

/// Snapshot of a [`FrozenSmoother`]: the basis, the frozen observation
/// grid and the cached `L × m` solve operator, all stored bit-exactly —
/// a restored smoother's [`FrozenSmoother::smooth`] is a product with the
/// *same* operator matrix, hence bit-identical coefficients.
#[derive(Debug, Clone)]
pub struct FrozenSmootherSnapshot {
    /// The basis of the smoothed expansions.
    pub basis: BasisSnapshot,
    /// Observation times the operator is frozen to.
    pub ts: Vec<f64>,
    /// The cached solve operator `S = (ΦᵀΦ + λR)⁻¹ Φᵀ`.
    pub solve_op: Matrix,
}

impl FrozenSmootherSnapshot {
    /// Rebuilds the live smoother, re-validating the shape invariants.
    pub fn restore(&self) -> Result<FrozenSmoother> {
        FrozenSmoother::from_parts(
            self.basis.restore()?,
            self.ts.clone(),
            self.solve_op.clone(),
        )
    }
}

impl FrozenSmoother {
    /// Converts this smoother into its persistable snapshot form; fails
    /// when the underlying basis does not support snapshots.
    pub fn snapshot(&self) -> Result<FrozenSmootherSnapshot> {
        Ok(FrozenSmootherSnapshot {
            basis: snapshot_basis(self.basis().as_ref())?,
            ts: self.ts().to_vec(),
            solve_op: self.solve_op().clone(),
        })
    }
}

impl Encode for FrozenSmootherSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.basis.encode(w);
        self.ts.encode(w);
        self.solve_op.encode(w);
    }
}

impl Decode for FrozenSmootherSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(FrozenSmootherSnapshot {
            basis: BasisSnapshot::decode(r)?,
            ts: Vec::decode(r)?,
            solve_op: Matrix::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smooth::PenalizedLeastSquares;

    fn roundtrip_bytes<T: Encode + Decode>(v: &T) -> T {
        let mut w = Encoder::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn bspline_snapshot_restores_bit_identical_basis() {
        let basis = BSplineBasis::uniform(0.0, 2.0, 11, 4).unwrap();
        let snap = basis.snapshot().unwrap();
        let back = roundtrip_bytes(&snap);
        assert_eq!(snap, back);
        let restored = back.restore().unwrap();
        assert_eq!(restored.len(), basis.len());
        assert_eq!(restored.domain(), basis.domain());
        for &t in &[0.0, 0.37, 1.2, 2.0] {
            for deriv in 0..3 {
                let a = basis.eval(t, deriv);
                let b = restored.eval(t, deriv);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "t={t} deriv={deriv}");
                }
            }
        }
        // the penalty matrix — quadrature over the same knots — matches too
        let pa = basis.penalty(2);
        let pb = restored.penalty(2);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fourier_and_polynomial_snapshots_roundtrip() {
        let f = FourierBasis::new(-1.0, 3.0, 7).unwrap();
        let restored = f.snapshot().unwrap().restore().unwrap();
        assert_eq!(restored.len(), 7);
        let a = f.eval(0.5, 1);
        let b = restored.eval(0.5, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let p = PolynomialBasis::new(0.0, 1.0, 4).unwrap();
        let restored = p.snapshot().unwrap().restore().unwrap();
        assert_eq!(restored.len(), 4);
    }

    #[test]
    fn invalid_restored_parameters_fail_typed() {
        // a tampered snapshot (NaN domain) fails through the ordinary
        // constructor validation
        let bad = BasisSnapshot::Fourier {
            a: f64::NAN,
            b: 1.0,
            len: 5,
        };
        assert!(bad.restore().is_err());
        let bad = BasisSnapshot::BSpline {
            a: 0.0,
            b: 1.0,
            order: 4,
            interior: vec![2.0], // outside (a, b)
        };
        assert!(bad.restore().is_err());
    }

    #[test]
    fn unknown_basis_tag_is_typed() {
        let mut w = Encoder::new();
        w.put_u32(99);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            BasisSnapshot::decode(&mut r),
            Err(PersistError::UnknownTag { what: "basis", .. })
        ));
    }

    #[test]
    fn selector_roundtrips_exactly() {
        let sel = BasisSelector {
            sizes: vec![6, 8, 12],
            lambdas: vec![0.0, 1e-8, 1e-2],
            order: 4,
            penalty_order: 2,
            criterion: SelectionCriterion::Gcv,
        };
        let back = roundtrip_bytes(&sel);
        assert_eq!(sel, back);
    }

    #[test]
    fn frozen_smoother_snapshot_smooths_bit_identically() {
        let ts: Vec<f64> = (0..30).map(|j| j as f64 / 29.0).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| (6.0 * t).sin()).collect();
        let basis = BSplineBasis::uniform(0.0, 1.0, 9, 4).unwrap();
        let smoother = PenalizedLeastSquares::new(basis, 1e-4, 2).unwrap();
        let frozen = smoother.freeze(&ts).unwrap();
        let snap = frozen.snapshot().unwrap();
        let restored = roundtrip_bytes(&snap).restore().unwrap();
        let a = frozen.smooth(&ys).unwrap();
        let b = restored.smooth(&ys).unwrap();
        for (x, y) in a.coefs().iter().zip(b.coefs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // tampered shapes are rejected on restore
        let mut bad = snap.clone();
        bad.ts.pop();
        assert!(bad.restore().is_err());
    }

    #[test]
    fn custom_basis_without_hook_fails_typed() {
        struct Weird;
        impl Basis for Weird {
            fn len(&self) -> usize {
                1
            }
            fn domain(&self) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn eval_into(&self, _t: f64, _deriv: usize, out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn penalty(&self, _q: usize) -> Matrix {
                Matrix::zeros(1, 1)
            }
        }
        assert!(matches!(
            snapshot_basis(&Weird),
            Err(FdaError::InvalidParameter(_))
        ));
    }
}
