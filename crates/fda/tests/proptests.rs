//! Property-based tests for the functional-data layer.

use mfod_fda::prelude::*;
use proptest::prelude::*;

fn bspline_params() -> impl Strategy<Value = (usize, usize)> {
    // (order, len) with len >= order
    (1usize..=5).prop_flat_map(|order| (Just(order), order..=(order + 12)))
}

proptest! {
    #[test]
    fn bspline_partition_of_unity((order, len) in bspline_params(), t in 0.0..=1.0f64) {
        let b = BSplineBasis::uniform(0.0, 1.0, len, order).unwrap();
        let vals = b.eval(t, 0);
        let s: f64 = vals.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-10, "sum {s}");
        prop_assert!(vals.iter().all(|&v| v >= -1e-12), "negative value");
    }

    #[test]
    fn bspline_local_support((order, len) in bspline_params(), t in 0.0..=1.0f64) {
        let b = BSplineBasis::uniform(0.0, 1.0, len, order).unwrap();
        let nz = b.eval(t, 0).iter().filter(|&&v| v.abs() > 1e-12).count();
        prop_assert!(nz <= order, "{nz} non-zero values for order {order}");
    }

    #[test]
    fn bspline_first_derivative_sums_to_zero(
        (order, len) in bspline_params(),
        t in 0.01..=0.99f64,
    ) {
        prop_assume!(order >= 2);
        let b = BSplineBasis::uniform(0.0, 1.0, len, order).unwrap();
        let s: f64 = b.eval(t, 1).iter().sum();
        prop_assert!(s.abs() < 1e-8, "derivative sum {s}");
    }

    #[test]
    fn bspline_derivative_matches_finite_difference(
        len in 4usize..=12,
        t in 0.05..=0.95f64,
    ) {
        let b = BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap();
        let h = 1e-6;
        let vp = b.eval(t + h, 0);
        let vm = b.eval(t - h, 0);
        let d = b.eval(t, 1);
        for l in 0..len {
            let fd = (vp[l] - vm[l]) / (2.0 * h);
            prop_assert!((d[l] - fd).abs() < 1e-4 * (1.0 + d[l].abs()), "l={l}");
        }
    }

    #[test]
    fn penalty_quadratic_form_nonnegative(
        len in 4usize..=10,
        q in 0usize..=2,
        coefs in prop::collection::vec(-10.0..10.0f64, 10),
    ) {
        let b = BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap();
        let r = b.penalty(q);
        let c = &coefs[..len];
        // cᵀ R c = ∫ (D^q Σ c φ)² >= 0
        let rc = r.matvec(c);
        let v = mfod_linalg::vector::dot(c, &rc);
        prop_assert!(v >= -1e-9, "quadratic form {v}");
    }

    #[test]
    fn smoother_reproduces_spline_space_elements(
        len in 5usize..=9,
        coefs in prop::collection::vec(-3.0..3.0f64, 9),
    ) {
        // Data generated exactly from the spline space are fit exactly
        // (λ = 0, enough observation points).
        let b = BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap();
        let c = &coefs[..len];
        let m = 40;
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let ys: Vec<f64> = ts
            .iter()
            .map(|&t| {
                let vals = b.eval(t, 0);
                mfod_linalg::vector::dot(c, &vals)
            })
            .collect();
        let fit = PenalizedLeastSquares::new(b, 0.0, 2).unwrap().fit(&ts, &ys).unwrap();
        for &t in &[0.1, 0.45, 0.9] {
            let b2 = BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap();
            let expect = mfod_linalg::vector::dot(c, &b2.eval(t, 0));
            prop_assert!((fit.eval(t) - expect).abs() < 1e-7);
        }
    }

    #[test]
    fn loocv_nonnegative_and_scales(
        lambda in 1e-8..1e2f64,
        len in 5usize..=10,
    ) {
        let m = 30;
        let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| (6.0 * t).sin() + 0.1 * (40.0 * t).cos()).collect();
        let b = BSplineBasis::uniform(0.0, 1.0, len, 4).unwrap();
        let s = PenalizedLeastSquares::new(b, lambda, 2).unwrap();
        let (_, d) = s.fit_with_diagnostics(&ts, &ys).unwrap();
        prop_assert!(d.loocv >= 0.0);
        prop_assert!(d.gcv >= 0.0);
        prop_assert!(d.rss >= 0.0);
        prop_assert!(d.df >= -1e-9 && d.df <= len as f64 + 1e-9);
    }

    #[test]
    fn fourier_orthonormality_partial(len in prop::sample::select(vec![3usize, 5, 7])) {
        let b = FourierBasis::new(0.0, 1.0, len).unwrap();
        let g = mfod_fda::fourier::gram_matrix_numeric(&b, 32, 8);
        for i in 0..len {
            for j in 0..len {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - expect).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn grid_uniform_is_sorted_and_bounded(
        a in -100.0..100.0f64,
        width in 0.1..50.0f64,
        m in 2usize..200,
    ) {
        let g = Grid::uniform(a, a + width, m).unwrap();
        prop_assert_eq!(g.len(), m);
        prop_assert_eq!(g.start(), a);
        prop_assert_eq!(g.end(), a + width);
        for w in g.points().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn planned_selection_bit_matches_unplanned_on_shared_grids(
        m in 20usize..=60,
        jitter in 0.0..0.4f64,
        freq in 0.5..3.0f64,
        curves in prop::collection::vec(prop::collection::vec(-0.5..0.5f64, 60), 3),
    ) {
        // A shared (possibly non-uniform) grid, three curves through one
        // plan: winner, score and coefficients must be bit-identical to
        // the uncached per-curve ladder.
        let ts: Vec<f64> = (0..m)
            .map(|j| {
                let u = j as f64 / (m - 1) as f64;
                u + jitter * 0.4 * (u * (1.0 - u)) * (j as f64 * 2.3).sin()
            })
            .collect();
        let sel = BasisSelector {
            sizes: vec![5, 7, 9],
            lambdas: vec![1e-8, 1e-3],
            ..BasisSelector::default()
        };
        let plan = sel.plan(&ts).unwrap();
        for noise in &curves {
            let ys: Vec<f64> = ts
                .iter()
                .zip(noise)
                .map(|(&t, &n)| (std::f64::consts::TAU * freq * t).sin() + n)
                .collect();
            let unplanned = sel.select(&ts, &ys).unwrap();
            let planned = plan.select(&ys).unwrap();
            prop_assert_eq!(unplanned.size, planned.size);
            prop_assert_eq!(unplanned.lambda.to_bits(), planned.lambda.to_bits());
            prop_assert_eq!(unplanned.score.to_bits(), planned.score.to_bits());
            prop_assert_eq!(unplanned.datum.coefs().len(), planned.datum.coefs().len());
            for (a, b) in unplanned.datum.coefs().iter().zip(planned.datum.coefs()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(
                unplanned.diagnostics.loocv.to_bits(),
                planned.diagnostics.loocv.to_bits()
            );
            prop_assert_eq!(
                unplanned.diagnostics.gcv.to_bits(),
                planned.diagnostics.gcv.to_bits()
            );
        }
    }

    #[test]
    fn mixed_grid_batches_fall_back_per_sample(
        m_plan in 20usize..=40,
        m_other in 20usize..=40,
        warp in 0.05..0.5f64,
    ) {
        // A plan built on one grid must route curves from any other grid
        // through the uncached fallback with identical results — the
        // batch-with-heterogeneous-grids scenario of the pipeline fit.
        let grid_a: Vec<f64> = (0..m_plan).map(|j| j as f64 / (m_plan - 1) as f64).collect();
        let grid_b: Vec<f64> = (0..m_other)
            .map(|j| (j as f64 / (m_other - 1) as f64).powf(1.0 + warp))
            .collect();
        let sel = BasisSelector::default();
        let plan = sel.plan(&grid_a).unwrap();
        let same_len_and_bits = grid_a.len() == grid_b.len()
            && grid_a.iter().zip(&grid_b).all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert_eq!(plan.same_grid(&grid_b), same_len_and_bits);
        let ys: Vec<f64> = grid_b
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).cos() + 0.1 * (9.0 * t).sin())
            .collect();
        let direct = sel.select(&grid_b, &ys).unwrap();
        let via_plan = sel.select_with_plan(&plan, &grid_b, &ys).unwrap();
        prop_assert_eq!(direct.size, via_plan.size);
        prop_assert_eq!(direct.score.to_bits(), via_plan.score.to_bits());
        for (a, b) in direct.datum.coefs().iter().zip(via_plan.datum.coefs()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multivariate_grid_eval_matches_pointwise(
        slope1 in -5.0..5.0f64,
        slope2 in -5.0..5.0f64,
    ) {
        use std::sync::Arc;
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let c1 = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, slope1]).unwrap();
        let c2 = FunctionalDatum::new(basis, vec![1.0, slope2]).unwrap();
        let mfd = MultiFunctionalDatum::new(vec![c1, c2]).unwrap();
        let g = Grid::uniform(0.0, 1.0, 7).unwrap();
        let m = mfd.eval_grid(&g);
        for (j, t) in g.iter().enumerate() {
            let pt = mfd.eval_point(t);
            prop_assert!((m[(j, 0)] - pt[0]).abs() < 1e-12);
            prop_assert!((m[(j, 1)] - pt[1]).abs() < 1e-12);
        }
    }
}
