//! Property-based tests for the end-to-end pipeline invariants.

use mfod::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn fast_pipeline(seed: u64) -> GeomOutlierPipeline {
    GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![8],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 30,
            ..Default::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 25,
            seed,
            ..Default::default()
        }),
    )
}

fn small_data(seed: u64) -> LabeledDataSet {
    EcgSimulator::new(EcgConfig {
        m: 30,
        ..Default::default()
    })
    .unwrap()
    .generate(16, 4, seed)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_scores_are_finite_and_deterministic(seed in 0u64..50) {
        let data = small_data(seed);
        let p = fast_pipeline(7);
        let fitted = p.fit(data.samples()).unwrap();
        let s1 = fitted.score(data.samples()).unwrap();
        prop_assert!(s1.iter().all(|v| v.is_finite()));
        let s2 = fitted.score(data.samples()).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn feature_rows_independent_of_batch(seed in 0u64..25) {
        // mapping a sample alone or within a batch must give the same row
        // (no cross-sample leakage in the feature stage)
        let data = small_data(seed);
        let p = fast_pipeline(3);
        let all = p.features(data.samples()).unwrap();
        let alone = p
            .features(std::slice::from_ref(&data.samples()[2]))
            .unwrap();
        for j in 0..all.ncols() {
            prop_assert!((all[(2, j)] - alone[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn split_then_score_auc_in_unit_interval(seed in 0u64..25) {
        let data = small_data(seed);
        let (train, test) = SplitConfig { train_size: 12, contamination: 0.1 }
            .split_datasets(&data, seed)
            .unwrap();
        let p = fast_pipeline(1);
        let a = p.fit_score_auc(&train, &test).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn baseline_scores_align_with_labels_better_than_random_on_easy_data(seed in 0u64..10) {
        // strong amplitude outliers: Dir.out must do clearly better than 0.5
        let data = TaxonomyConfig { m: 25, noise_std: 0.02 }
            .generate(OutlierType::AmplitudePersistent, 25, 5, seed)
            .unwrap();
        let (train, test) = SplitConfig { train_size: 15, contamination: 0.1 }
            .split_datasets(&data, seed)
            .unwrap();
        let b = DepthBaseline::new(Arc::new(DirOut::new()));
        let a = b.auc(&train, &test).unwrap();
        prop_assert!(a > 0.7, "Dir.out AUC {a} on trivially-separable data");
    }

    #[test]
    fn ensemble_contributions_bounded(seed in 0u64..10) {
        let data = small_data(seed);
        let e = MappingEnsemble::new()
            .with_member(fast_pipeline(1))
            .with_member(GeomOutlierPipeline::new(
                PipelineConfig {
                    selector: BasisSelector {
                        sizes: vec![8],
                        lambdas: vec![1e-2],
                        ..Default::default()
                    },
                    grid_len: 30,
                    ..Default::default()
                },
                Arc::new(Speed),
                Arc::new(IsolationForest { n_trees: 25, ..Default::default() }),
            ));
        let fitted = e.fit(data.samples()).unwrap();
        let (combined, contributions) = fitted.score_decomposed(data.samples()).unwrap();
        for (i, &c) in combined.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&c));
            for j in 0..2 {
                prop_assert!((0.0..=1.0).contains(&contributions[(i, j)]));
            }
        }
    }
}
