//! Unified error type for the end-to-end pipeline.

use std::fmt;

/// Errors from any stage of the mfod pipeline.
#[derive(Debug)]
pub enum MfodError {
    /// Functional representation / smoothing failure.
    Fda(mfod_fda::FdaError),
    /// Geometric mapping failure.
    Geometry(mfod_geometry::GeometryError),
    /// Depth baseline failure.
    Depth(mfod_depth::DepthError),
    /// Detector failure.
    Detect(mfod_detect::DetectError),
    /// Dataset failure.
    Dataset(mfod_datasets::DatasetError),
    /// Evaluation failure.
    Eval(mfod_eval::EvalError),
    /// Model snapshot failure (encoding, decoding, io or registry).
    Persist(mfod_persist::PersistError),
    /// Pipeline-level contract violation (e.g. inconsistent sample domains).
    Pipeline(String),
}

impl fmt::Display for MfodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MfodError::Fda(e) => write!(f, "smoothing: {e}"),
            MfodError::Geometry(e) => write!(f, "mapping: {e}"),
            MfodError::Depth(e) => write!(f, "depth baseline: {e}"),
            MfodError::Detect(e) => write!(f, "detector: {e}"),
            MfodError::Dataset(e) => write!(f, "dataset: {e}"),
            MfodError::Eval(e) => write!(f, "evaluation: {e}"),
            MfodError::Persist(e) => write!(f, "snapshot: {e}"),
            MfodError::Pipeline(msg) => write!(f, "pipeline: {msg}"),
        }
    }
}

impl std::error::Error for MfodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MfodError::Fda(e) => Some(e),
            MfodError::Geometry(e) => Some(e),
            MfodError::Depth(e) => Some(e),
            MfodError::Detect(e) => Some(e),
            MfodError::Dataset(e) => Some(e),
            MfodError::Eval(e) => Some(e),
            MfodError::Persist(e) => Some(e),
            MfodError::Pipeline(_) => None,
        }
    }
}

impl From<mfod_fda::FdaError> for MfodError {
    fn from(e: mfod_fda::FdaError) -> Self {
        MfodError::Fda(e)
    }
}

impl From<mfod_geometry::GeometryError> for MfodError {
    fn from(e: mfod_geometry::GeometryError) -> Self {
        MfodError::Geometry(e)
    }
}

impl From<mfod_depth::DepthError> for MfodError {
    fn from(e: mfod_depth::DepthError) -> Self {
        MfodError::Depth(e)
    }
}

impl From<mfod_detect::DetectError> for MfodError {
    fn from(e: mfod_detect::DetectError) -> Self {
        MfodError::Detect(e)
    }
}

impl From<mfod_datasets::DatasetError> for MfodError {
    fn from(e: mfod_datasets::DatasetError) -> Self {
        MfodError::Dataset(e)
    }
}

impl From<mfod_eval::EvalError> for MfodError {
    fn from(e: mfod_eval::EvalError) -> Self {
        MfodError::Eval(e)
    }
}

impl From<mfod_persist::PersistError> for MfodError {
    fn from(e: mfod_persist::PersistError) -> Self {
        MfodError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: MfodError = mfod_fda::FdaError::NonFinite.into();
        assert!(e.to_string().contains("smoothing"));
        assert!(e.source().is_some());
        let e: MfodError = mfod_detect::DetectError::NonFinite.into();
        assert!(e.to_string().contains("detector"));
        let e: MfodError = mfod_eval::EvalError::SingleClass.into();
        assert!(e.to_string().contains("evaluation"));
        let e = MfodError::Pipeline("domains differ".into());
        assert!(e.to_string().contains("domains differ"));
        assert!(e.source().is_none());
        let e: MfodError = mfod_depth::DepthError::NonFinite.into();
        assert!(e.to_string().contains("depth"));
        let e: MfodError = mfod_datasets::DatasetError::InvalidParameter("x".into()).into();
        assert!(e.to_string().contains("dataset"));
        let e: MfodError = mfod_geometry::GeometryError::NonFinite.into();
        assert!(e.to_string().contains("mapping"));
        let e: MfodError = mfod_persist::PersistError::MissingSection { id: 1 }.into();
        assert!(e.to_string().contains("snapshot"));
        assert!(e.source().is_some());
    }
}
