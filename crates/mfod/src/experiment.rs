//! The paper's Fig. 3 experiment: AUC versus training contamination level
//! for the two geometric pipelines — `iFor(Curvmap)`, `OCSVM(Curvmap)` —
//! against the depth baselines `FUNTA` and `Dir.out`, averaged over
//! repeated random splits.
//!
//! Protocol (Sec. 4.1):
//! 1. ECG data (`m = 85`), augmented to bivariate MFD with the squared
//!    series;
//! 2. for each contamination level `c ∈ {5, 10, 15, 20, 25}%`: draw a
//!    train/test split whose training set contains exactly `c` outliers,
//!    fit iForest and OCSVM (ν tuned by 5-fold CV) on the *mapped* training
//!    curves, score the test set and record the AUC;
//! 3. repeat 50 times per level and report mean ± std.
//!
//! Smoothing and mapping do not depend on the split, so the feature matrix
//! and the baselines' gridded dataset are computed once and the split loop
//! only refits detectors — a few orders of magnitude faster than
//! re-smoothing per repetition, with identical results.

use crate::baselines::DepthBaseline;
use crate::error::MfodError;
use crate::pipeline::{GeomOutlierPipeline, PipelineConfig};
use crate::tune::NuTuner;
use crate::Result;
use mfod_datasets::{EcgConfig, EcgSimulator, LabeledDataSet, SplitConfig};
use mfod_depth::{DirOut, FunctionalOutlierScorer, Funta};
use mfod_detect::features::Standardizer;
use mfod_detect::{Detector, IsolationForest, OcSvm};
use mfod_eval::{run_repeated, RepeatedSummary};
use mfod_geometry::Curvature;
use std::sync::Arc;

/// Configuration of the Fig. 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Contamination levels to sweep (the paper: 5…25%).
    pub contamination_levels: Vec<f64>,
    /// Random splits per level (the paper: 50).
    pub repetitions: usize,
    /// Training-set size per split.
    pub train_size: usize,
    /// Normal beats generated.
    pub n_normal: usize,
    /// Abnormal beats generated.
    pub n_abnormal: usize,
    /// ECG simulator settings (`m = 85` matches ECG200).
    pub ecg: EcgConfig,
    /// Smoothing/mapping settings.
    pub pipeline: PipelineConfig,
    /// iForest settings.
    pub iforest: IsolationForest,
    /// OCSVM template (ν is overridden by the tuner).
    pub ocsvm: OcSvm,
    /// ν tuner (5-fold CV, Sec. 4.3).
    pub nu_tuner: NuTuner,
    /// Seed for the dataset generation.
    pub data_seed: u64,
    /// Base seed for the split repetitions.
    pub split_seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            contamination_levels: vec![0.05, 0.10, 0.15, 0.20, 0.25],
            repetitions: 50,
            train_size: 96,
            n_normal: 128,
            n_abnormal: 64,
            ecg: EcgConfig::default(),
            pipeline: PipelineConfig::default(),
            iforest: IsolationForest::default(),
            ocsvm: OcSvm::default(),
            nu_tuner: NuTuner::default(),
            data_seed: 2020,
            split_seed: 38,
        }
    }
}

impl Fig3Config {
    /// A much smaller configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Fig3Config {
            contamination_levels: vec![0.10, 0.25],
            repetitions: 3,
            train_size: 30,
            n_normal: 40,
            n_abnormal: 20,
            ecg: EcgConfig {
                m: 40,
                ..Default::default()
            },
            pipeline: PipelineConfig::fast(),
            iforest: IsolationForest {
                n_trees: 50,
                ..Default::default()
            },
            nu_tuner: NuTuner {
                folds: 3,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// One row of the Fig. 3 result: a contamination level with the
/// per-method AUC summaries.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The contamination level `c`.
    pub contamination: f64,
    /// AUC mean ± std per method.
    pub summary: RepeatedSummary,
    /// `Dir.out` projection directions that degenerated (zero MAD of the
    /// projected reference cloud), summed over the level's repetitions —
    /// the direction-budget collapse signal of
    /// [`mfod_depth::dirout::DirOutScores::degenerate_directions`].
    pub dirout_degenerate: usize,
    /// Total `Dir.out` directions attempted across the level's
    /// repetitions, as reported by the projection layer
    /// ([`mfod_depth::dirout::DirOutScores::attempted_directions`]); the
    /// denominator for [`Fig3Row::dirout_degenerate`].
    pub dirout_direction_budget: usize,
}

/// Runs the full Fig. 3 experiment.
pub fn run_fig3(cfg: &Fig3Config) -> Result<Vec<Fig3Row>> {
    // 1. data: ECG beats, augmented with the squared series (Sec. 4.1)
    let data = EcgSimulator::new(cfg.ecg.clone())?
        .generate(cfg.n_normal, cfg.n_abnormal, cfg.data_seed)?
        .augment_with(0, |y| y * y)?;
    run_fig3_on(cfg, &data)
}

/// Runs the Fig. 3 protocol on externally supplied (already augmented)
/// data — e.g. the real ECG200 loaded via `mfod_datasets::ucr`.
pub fn run_fig3_on(cfg: &Fig3Config, data: &LabeledDataSet) -> Result<Vec<Fig3Row>> {
    // 2. split-independent precomputation
    let curv_pipeline = GeomOutlierPipeline::new(
        cfg.pipeline.clone(),
        Arc::new(Curvature),
        Arc::new(cfg.iforest.clone()),
    );
    let features = curv_pipeline.features(data.samples())?;
    let gridded = DepthBaseline::gridded(data)?;
    let funta = Funta::new();
    let dirout = DirOut::new();
    let all_cols: Vec<usize> = (0..features.ncols()).collect();

    let mut rows = Vec::with_capacity(cfg.contamination_levels.len());
    for &c in &cfg.contamination_levels {
        let split_cfg = SplitConfig {
            train_size: cfg.train_size,
            contamination: c,
        };
        let mut dirout_degenerate = 0usize;
        let mut dirout_direction_budget = 0usize;
        let summary = run_repeated(cfg.repetitions, cfg.split_seed, |seed| {
            let split = split_cfg.split(data, seed).map_err(MfodError::from)?;
            let test_labels: Vec<bool> = split
                .test_indices
                .iter()
                .map(|&i| data.labels()[i])
                .collect();
            let train_f = features.submatrix(&split.train_indices, &all_cols);
            let test_f = features.submatrix(&split.test_indices, &all_cols);

            // iFor(Curvmap)
            let ifor = cfg.iforest.fit(&train_f).map_err(MfodError::from)?;
            let ifor_auc = mfod_eval::auc(
                &ifor.score_batch(&test_f).map_err(MfodError::from)?,
                &test_labels,
            )
            .map_err(MfodError::from)?;

            // OCSVM(Curvmap), ν tuned by k-fold self-consistency CV;
            // features standardized with training statistics (the RBF
            // kernel is distance-based, unlike the scale-free iForest)
            let std = Standardizer::fit(&train_f).map_err(MfodError::from)?;
            let train_z = std.transform(&train_f).map_err(MfodError::from)?;
            let test_z = std.transform(&test_f).map_err(MfodError::from)?;
            let (_, ocsvm) = cfg.nu_tuner.tune_and_fit(&cfg.ocsvm, &train_z)?;
            let ocsvm_auc = mfod_eval::auc(
                &ocsvm.score_batch(&test_z).map_err(MfodError::from)?,
                &test_labels,
            )
            .map_err(MfodError::from)?;

            // depth baselines, fit on the training reference (so that
            // training contamination affects them exactly as it affects the
            // detector-based pipelines)
            let train_g = gridded
                .subset(&split.train_indices)
                .map_err(MfodError::from)?;
            let test_g = gridded
                .subset(&split.test_indices)
                .map_err(MfodError::from)?;
            let funta_scores = funta
                .score_against(&train_g, &test_g)
                .map_err(MfodError::from)?;
            let funta_auc = mfod_eval::auc(&funta_scores, &test_labels).map_err(MfodError::from)?;
            let dirout_scores = dirout
                .decompose_against(&train_g, &test_g)
                .map_err(MfodError::from)?;
            dirout_degenerate += dirout_scores.degenerate_directions;
            dirout_direction_budget += dirout_scores.attempted_directions;
            let dirout_auc =
                mfod_eval::auc(&dirout_scores.fo, &test_labels).map_err(MfodError::from)?;

            Ok::<_, MfodError>(vec![
                ("iFor(Curvmap)".to_string(), ifor_auc),
                ("OCSVM(Curvmap)".to_string(), ocsvm_auc),
                ("FUNTA".to_string(), funta_auc),
                ("Dir.out".to_string(), dirout_auc),
            ])
        })?;
        rows.push(Fig3Row {
            contamination: c,
            summary,
            dirout_degenerate,
            dirout_direction_budget,
        });
    }
    Ok(rows)
}

/// Renders the Fig. 3 result as the text analogue of the paper's plot:
/// one row per contamination level, one column per method (mean ± std).
pub fn format_fig3(rows: &[Fig3Row]) -> String {
    let methods = ["Dir.out", "FUNTA", "iFor(Curvmap)", "OCSVM(Curvmap)"];
    let mut out = String::from("AUC vs. contamination level (mean ± std)\n");
    out.push_str(&format!("{:>6}", "c"));
    for m in &methods {
        out.push_str(&format!("  {m:>16}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:>5.0}%", row.contamination * 100.0));
        for m in &methods {
            match row.summary.get(m) {
                Some(s) => out.push_str(&format!("  {:>8.3} ± {:>5.3}", s.mean, s.std)),
                None => out.push_str(&format!("  {:>16}", "—")),
            }
        }
        out.push('\n');
    }
    // Direction-budget health of the Dir.out baseline: a large degenerate
    // share means the projection supremum was estimated from far fewer
    // directions than configured and its AUC column should be read with
    // suspicion.
    out.push_str("\nDir.out direction budget (degenerate / attempted):\n");
    for row in rows {
        let pct = if row.dirout_direction_budget == 0 {
            0.0
        } else {
            100.0 * row.dirout_degenerate as f64 / row.dirout_direction_budget as f64
        };
        out.push_str(&format!(
            "{:>5.0}%  {} / {} ({pct:.2}% degenerate)\n",
            row.contamination * 100.0,
            row.dirout_degenerate,
            row.dirout_direction_budget,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_methods() {
        let cfg = Fig3Config::smoke();
        let rows = run_fig3(&cfg).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.summary.repetitions, 3);
            for m in ["iFor(Curvmap)", "OCSVM(Curvmap)", "FUNTA", "Dir.out"] {
                let s = row.summary.get(m).unwrap_or_else(|| panic!("missing {m}"));
                assert!(
                    (0.0..=1.0).contains(&s.mean),
                    "{m} mean {} out of range",
                    s.mean
                );
                assert!(s.std >= 0.0);
            }
        }
    }

    #[test]
    fn formatting_contains_all_columns() {
        let cfg = Fig3Config::smoke();
        let rows = run_fig3(&cfg).unwrap();
        let text = format_fig3(&rows);
        assert!(text.contains("iFor(Curvmap)"));
        assert!(text.contains("OCSVM(Curvmap)"));
        assert!(text.contains("FUNTA"));
        assert!(text.contains("Dir.out"));
        assert!(text.contains("10%"));
        assert!(text.contains("25%"));
        assert!(text.contains("direction budget"));
        for row in &rows {
            assert!(row.dirout_direction_budget > 0);
            assert!(row.dirout_degenerate <= row.dirout_direction_budget);
        }
    }

    #[test]
    fn geometric_pipeline_beats_baselines_on_average() {
        // The paper's headline claim, on a reduced-but-meaningful setup.
        let cfg = Fig3Config {
            repetitions: 3,
            contamination_levels: vec![0.10],
            train_size: 40,
            n_normal: 60,
            n_abnormal: 30,
            ecg: EcgConfig {
                m: 50,
                ..Default::default()
            },
            pipeline: PipelineConfig {
                selector: mfod_fda::BasisSelector {
                    sizes: vec![12],
                    lambdas: vec![1e-2],
                    ..Default::default()
                },
                grid_len: 50,
                ..Default::default()
            },
            iforest: IsolationForest {
                n_trees: 100,
                ..Default::default()
            },
            nu_tuner: NuTuner {
                folds: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let rows = run_fig3(&cfg).unwrap();
        let s = &rows[0].summary;
        let ifor = s.get("iFor(Curvmap)").unwrap().mean;
        let funta = s.get("FUNTA").unwrap().mean;
        assert!(
            ifor > funta - 0.05,
            "iFor(Curvmap) {ifor} should not lose clearly to FUNTA {funta}"
        );
    }
}
