//! The interpretable ensemble sketched in the paper's Sec. 5 (future work):
//! train several mapping+detector pipelines — ideally one per outlier class
//! — and average their (rank-normalized) scores. Reading the per-member
//! contributions of a flagged sample reveals *which kind* of outlyingness
//! it exhibits, the interpretability goal the paper states.

use crate::error::MfodError;
use crate::pipeline::{FittedPipeline, GeomOutlierPipeline};
use crate::Result;
use mfod_fda::RawSample;
use mfod_linalg::Matrix;

/// An (unfitted) ensemble of geometric pipelines.
#[derive(Debug, Clone, Default)]
pub struct MappingEnsemble {
    members: Vec<GeomOutlierPipeline>,
}

impl MappingEnsemble {
    /// Empty ensemble; add members with [`MappingEnsemble::with_member`].
    pub fn new() -> Self {
        MappingEnsemble::default()
    }

    /// Adds a member pipeline (builder style).
    pub fn with_member(mut self, member: GeomOutlierPipeline) -> Self {
        self.members.push(member);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members were added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Fits every member on the same training samples.
    ///
    /// The paper's full recipe first isolates per-class training subsets
    /// with depth functions; fitting all members on a common set is the
    /// degenerate-but-useful version when class-pure subsets are not
    /// available. Use [`MappingEnsemble::fit_per_member`] for the full
    /// recipe.
    pub fn fit(&self, train: &[RawSample]) -> Result<FittedMappingEnsemble> {
        if self.members.is_empty() {
            return Err(MfodError::Pipeline("ensemble has no members".into()));
        }
        let fitted = self
            .members
            .iter()
            .map(|m| m.fit(train))
            .collect::<Result<Vec<_>>>()?;
        Ok(FittedMappingEnsemble { members: fitted })
    }

    /// Fits member `i` on `train_sets[i]` (the paper's per-outlier-class
    /// training sets).
    pub fn fit_per_member(&self, train_sets: &[&[RawSample]]) -> Result<FittedMappingEnsemble> {
        if self.members.is_empty() {
            return Err(MfodError::Pipeline("ensemble has no members".into()));
        }
        if train_sets.len() != self.members.len() {
            return Err(MfodError::Pipeline(format!(
                "{} training sets for {} members",
                train_sets.len(),
                self.members.len()
            )));
        }
        let fitted = self
            .members
            .iter()
            .zip(train_sets)
            .map(|(m, t)| m.fit(t))
            .collect::<Result<Vec<_>>>()?;
        Ok(FittedMappingEnsemble { members: fitted })
    }
}

/// A fitted ensemble.
pub struct FittedMappingEnsemble {
    members: Vec<FittedPipeline>,
}

impl FittedMappingEnsemble {
    /// Reassembles an ensemble from restored members (`crate::snapshot`
    /// validates each member and the non-empty invariant before calling
    /// this).
    pub(crate) fn from_members(members: Vec<FittedPipeline>) -> Self {
        FittedMappingEnsemble { members }
    }

    /// The fitted member pipelines, in member order.
    pub fn members(&self) -> &[FittedPipeline] {
        &self.members
    }

    /// Member labels (`"<detector>(<mapping>)"`), in member order.
    pub fn member_labels(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.label()).collect()
    }

    /// Ensemble scores: the mean of rank-normalized member scores.
    ///
    /// Each member's raw scores are converted to average ranks within the
    /// scored batch and rescaled to `[0, 1]`, making members with different
    /// score scales commensurable (iForest scores live in `(0, 1]`, OCSVM
    /// scores are signed margins). Scores are therefore *batch-relative*.
    pub fn score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        Ok(self.score_decomposed(samples)?.0)
    }

    /// Ensemble scores plus the per-member normalized score matrix
    /// (`n x members`) — read a flagged row to see which members (i.e.
    /// which outlyingness notions) drive the decision.
    pub fn score_decomposed(&self, samples: &[RawSample]) -> Result<(Vec<f64>, Matrix)> {
        if samples.len() < 2 {
            return Err(MfodError::Pipeline(
                "ensemble scoring needs >= 2 samples (rank normalization)".into(),
            ));
        }
        let n = samples.len();
        let k = self.members.len();
        let mut contributions = Matrix::zeros(n, k);
        for (j, member) in self.members.iter().enumerate() {
            let raw = member.score(samples)?;
            let ranks = mfod_linalg::vector::average_ranks(&raw);
            for i in 0..n {
                contributions[(i, j)] = (ranks[i] - 1.0) / (n as f64 - 1.0);
            }
        }
        let combined: Vec<f64> = (0..n)
            .map(|i| contributions.row(i).iter().sum::<f64>() / k as f64)
            .collect();
        Ok((combined, contributions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use mfod_datasets::{EcgConfig, EcgSimulator};
    use mfod_detect::IsolationForest;
    use mfod_geometry::{Curvature, Speed};
    use std::sync::Arc;

    fn member(mapping: Arc<dyn mfod_geometry::MappingFunction>) -> GeomOutlierPipeline {
        GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            mapping,
            Arc::new(IsolationForest {
                n_trees: 30,
                ..Default::default()
            }),
        )
    }

    fn data() -> mfod_datasets::LabeledDataSet {
        EcgSimulator::new(EcgConfig {
            m: 40,
            ..Default::default()
        })
        .unwrap()
        .generate(20, 5, 13)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap()
    }

    #[test]
    fn builder_and_fit() {
        let e = MappingEnsemble::new()
            .with_member(member(Arc::new(Curvature)))
            .with_member(member(Arc::new(Speed)));
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        let d = data();
        let fitted = e.fit(d.samples()).unwrap();
        assert_eq!(
            fitted.member_labels(),
            vec!["iforest(curvature)", "iforest(speed)"]
        );
    }

    #[test]
    fn scores_are_normalized_means() {
        let e = MappingEnsemble::new()
            .with_member(member(Arc::new(Curvature)))
            .with_member(member(Arc::new(Speed)));
        let d = data();
        let fitted = e.fit(d.samples()).unwrap();
        let (scores, contributions) = fitted.score_decomposed(d.samples()).unwrap();
        assert_eq!(scores.len(), d.len());
        assert_eq!(contributions.shape(), (d.len(), 2));
        // every contribution in [0, 1]; combined = row mean
        for i in 0..d.len() {
            for j in 0..2 {
                assert!((0.0..=1.0).contains(&contributions[(i, j)]));
            }
            let mean = (contributions[(i, 0)] + contributions[(i, 1)]) / 2.0;
            assert!((scores[i] - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_ensemble_rejected() {
        let e = MappingEnsemble::new();
        assert!(e.fit(data().samples()).is_err());
        assert!(e.is_empty());
    }

    #[test]
    fn per_member_training_sets() {
        let e = MappingEnsemble::new()
            .with_member(member(Arc::new(Curvature)))
            .with_member(member(Arc::new(Speed)));
        let d = data();
        let half1 = d.subset(&(0..10).collect::<Vec<_>>()).unwrap();
        let half2 = d.subset(&(10..20).collect::<Vec<_>>()).unwrap();
        let fitted = e
            .fit_per_member(&[half1.samples(), half2.samples()])
            .unwrap();
        let s = fitted.score(d.samples()).unwrap();
        assert_eq!(s.len(), d.len());
        // wrong number of training sets
        assert!(e.fit_per_member(&[half1.samples()]).is_err());
    }

    #[test]
    fn too_few_samples_for_ranking() {
        let e = MappingEnsemble::new().with_member(member(Arc::new(Curvature)));
        let d = data();
        let fitted = e.fit(d.samples()).unwrap();
        assert!(fitted.score(&d.samples()[..1]).is_err());
    }
}
