//! The end-to-end pipeline of the paper: per-channel penalized smoothing →
//! geometric mapping → multivariate outlier detector.

use crate::error::MfodError;
use crate::Result;
use mfod_datasets::LabeledDataSet;
use mfod_detect::{Detector, FittedDetector};
use mfod_fda::{BasisSelector, Grid, MultiFunctionalDatum, RawSample};
use mfod_geometry::MappingFunction;
use mfod_linalg::Matrix;
use std::sync::Arc;

/// Point-wise transform applied to the mapped features before they reach
/// the detector.
///
/// Curvature is heavy-tailed: wherever the smoothed path passes near a
/// stationary point, `κ = ‖X′×X″‖/‖X′‖³` can spike by orders of magnitude
/// on noise alone, and those spikes would dominate any distance-based
/// detector. A monotone compression keeps the ordering information while
/// taming the tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureTransform {
    /// Pass features through unchanged.
    None,
    /// `ln(1 + x)` — the default; sensible for non-negative heavy-tailed
    /// mappings such as curvature and speed.
    Log1p,
    /// `sign(x)·√|x|` — milder compression, defined for signed mappings.
    SignedSqrt,
    /// Clamp every value above the given quantile of the *training*
    /// feature distribution (e.g. `0.99`).
    Winsorize(f64),
}

impl FeatureTransform {
    /// Applies the transform in place. For [`FeatureTransform::Winsorize`],
    /// `cap` must be the training-set quantile (computed by the caller so
    /// that test-time transforms reuse the training cap).
    fn apply(&self, data: &mut [f64], cap: Option<f64>) {
        match *self {
            FeatureTransform::None => {}
            FeatureTransform::Log1p => {
                for v in data.iter_mut() {
                    *v = (1.0 + v.max(0.0)).ln();
                }
            }
            FeatureTransform::SignedSqrt => {
                for v in data.iter_mut() {
                    *v = v.signum() * v.abs().sqrt();
                }
            }
            FeatureTransform::Winsorize(_) => {
                let cap = cap.expect("winsorize cap computed at fit time");
                for v in data.iter_mut() {
                    if *v > cap {
                        *v = cap;
                    }
                }
            }
        }
    }
}

/// Configuration of the smoothing and mapping stages.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Per-channel B-spline selection (the paper chooses basis sizes by
    /// leave-one-out cross-validation, Sec. 4.1).
    pub selector: BasisSelector,
    /// Length of the common evaluation grid for the mapped UFD (the paper
    /// re-evaluates on a regular grid of the same length as the data,
    /// m = 85 for ECG200).
    pub grid_len: usize,
    /// Monotone compression of the mapped features (see
    /// [`FeatureTransform`]).
    pub transform: FeatureTransform,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // Derivative-based mappings need *more* smoothing than prediction-
        // optimal CV selects (a classical FDA caveat: LOOCV optimizes the
        // fit to the function, not to its derivatives, and under-smoothed
        // derivatives create spurious curvature cusps near stationary
        // points). The default therefore fixes a moderate basis with a
        // meaningful roughness penalty; use a custom `selector` to
        // reproduce the pure-LOOCV protocol.
        PipelineConfig {
            selector: BasisSelector { sizes: vec![16], lambdas: vec![1e-2], ..Default::default() },
            grid_len: 85,
            transform: FeatureTransform::Log1p,
        }
    }
}

impl PipelineConfig {
    /// A cheaper configuration for tests and examples: a small basis-size
    /// ladder (heavier smoothing, appropriate for coarse grids) and a
    /// shorter evaluation grid.
    pub fn fast() -> Self {
        PipelineConfig {
            selector: BasisSelector { sizes: vec![6, 8], ..BasisSelector::default() },
            grid_len: 40,
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.grid_len < 4 {
            return Err(MfodError::Pipeline(format!(
                "grid_len must be >= 4, got {}",
                self.grid_len
            )));
        }
        if let FeatureTransform::Winsorize(q) = self.transform {
            if !(0.0..=1.0).contains(&q) {
                return Err(MfodError::Pipeline(format!(
                    "winsorize quantile must be in [0, 1], got {q}"
                )));
            }
        }
        Ok(())
    }
}

/// The geometric-aggregation outlier detection pipeline
/// (smoother ∘ mapping ∘ detector).
#[derive(Clone)]
pub struct GeomOutlierPipeline {
    config: PipelineConfig,
    mapping: Arc<dyn MappingFunction>,
    detector: Arc<dyn Detector>,
}

impl std::fmt::Debug for GeomOutlierPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeomOutlierPipeline")
            .field("mapping", &self.mapping.name())
            .field("detector", &self.detector.name())
            .field("grid_len", &self.config.grid_len)
            .finish()
    }
}

impl GeomOutlierPipeline {
    /// Assembles a pipeline from its three stages.
    pub fn new(
        config: PipelineConfig,
        mapping: Arc<dyn MappingFunction>,
        detector: Arc<dyn Detector>,
    ) -> Self {
        GeomOutlierPipeline { config, mapping, detector }
    }

    /// `"<detector>(<mapping>)"`, e.g. `"iforest(curvature)"` — the naming
    /// scheme of the paper's Fig. 3 legend.
    pub fn label(&self) -> String {
        format!("{}({})", self.detector.name(), self.mapping.name())
    }

    /// Smooths every channel of a raw sample with the configured selector.
    pub fn smooth_sample(&self, sample: &RawSample) -> Result<MultiFunctionalDatum> {
        smooth_sample(&self.config.selector, sample)
    }

    /// Smooths and maps a batch into the *raw* (untransformed) feature
    /// matrix: row `i` is the mapped UFD of sample `i` on the common grid.
    ///
    /// All samples must share the same observation domain (the paper's
    /// setting: a common interval `T`).
    pub fn raw_features(&self, samples: &[RawSample]) -> Result<Matrix> {
        self.config.validate()?;
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let (a0, b0) = samples[0].domain();
        for (i, s) in samples.iter().enumerate() {
            let (a, b) = s.domain();
            let tol = 1e-9 * (b0 - a0).abs().max(1.0);
            if (a - a0).abs() > tol || (b - b0).abs() > tol {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} domain [{a}, {b}] differs from [{a0}, {b0}]"
                )));
            }
        }
        let grid = Grid::uniform(a0, b0, self.config.grid_len)?;
        let mut out = Matrix::zeros(samples.len(), grid.len());
        for (i, s) in samples.iter().enumerate() {
            let datum = self.smooth_sample(s)?;
            let mapped = self.mapping.map(&datum, &grid)?;
            out.row_mut(i).copy_from_slice(&mapped);
        }
        Ok(out)
    }

    /// Like [`GeomOutlierPipeline::raw_features`] with the configured
    /// [`FeatureTransform`] applied (the winsorize cap, if any, comes from
    /// this same batch).
    pub fn features(&self, samples: &[RawSample]) -> Result<Matrix> {
        let mut f = self.raw_features(samples)?;
        let cap = self.winsorize_cap(&f);
        self.config.transform.apply(f.as_mut_slice(), cap);
        Ok(f)
    }

    fn winsorize_cap(&self, raw: &Matrix) -> Option<f64> {
        match self.config.transform {
            FeatureTransform::Winsorize(q) => {
                Some(mfod_linalg::vector::quantile(raw.as_slice(), q))
            }
            _ => None,
        }
    }

    /// Fits the detector on the mapped training samples.
    pub fn fit(&self, train: &[RawSample]) -> Result<FittedPipeline> {
        let mut features = self.raw_features(train)?;
        let cap = self.winsorize_cap(&features);
        self.config.transform.apply(features.as_mut_slice(), cap);
        let model = self.detector.fit(&features)?;
        Ok(FittedPipeline {
            config: self.config.clone(),
            mapping: Arc::clone(&self.mapping),
            model,
            label: self.label(),
            winsorize_cap: cap,
            domain: train[0].domain(),
        })
    }

    /// Convenience: fit on `train`, score `test`, return the test AUC.
    pub fn fit_score_auc(
        &self,
        train: &LabeledDataSet,
        test: &LabeledDataSet,
    ) -> Result<f64> {
        let fitted = self.fit(train.samples())?;
        let scores = fitted.score(test.samples())?;
        Ok(mfod_eval::auc(&scores, test.labels())?)
    }

    /// The mapping stage.
    pub fn mapping(&self) -> &Arc<dyn MappingFunction> {
        &self.mapping
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Smooths every channel of a raw sample with cross-validated B-spline
/// selection (the paper's Sec. 4.1 procedure), shared by the pipeline and
/// its fitted form.
pub fn smooth_sample(
    selector: &BasisSelector,
    sample: &RawSample,
) -> Result<MultiFunctionalDatum> {
    let mut channels = Vec::with_capacity(sample.dim());
    for k in 0..sample.dim() {
        let (ts, ys) = sample.channel(k).expect("validated channel index");
        let fit = selector.select(ts, ys)?;
        channels.push(fit.datum);
    }
    Ok(MultiFunctionalDatum::new(channels)?)
}

/// A fitted pipeline, ready to score unseen raw samples.
pub struct FittedPipeline {
    config: PipelineConfig,
    mapping: Arc<dyn MappingFunction>,
    model: Box<dyn FittedDetector>,
    label: String,
    /// Training-set winsorization cap (only for
    /// [`FeatureTransform::Winsorize`]).
    winsorize_cap: Option<f64>,
    /// Observation domain the model was trained on; scoring rejects samples
    /// from a different domain (their grid features would not be
    /// commensurable with the training features).
    domain: (f64, f64),
}

impl std::fmt::Debug for FittedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedPipeline").field("label", &self.label).finish()
    }
}

impl FittedPipeline {
    /// The `"<detector>(<mapping>)"` label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Scores raw samples; **higher = more outlying**.
    pub fn score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let (a, b) = samples[0].domain();
        let (a0, b0) = self.domain;
        let tol = 1e-9 * (b0 - a0).abs().max(1.0);
        if (a - a0).abs() > tol || (b - b0).abs() > tol {
            return Err(MfodError::Pipeline(format!(
                "scoring domain [{a}, {b}] differs from the training domain [{a0}, {b0}]"
            )));
        }
        let grid = Grid::uniform(a, b, self.config.grid_len)?;
        let mut scores = Vec::with_capacity(samples.len());
        for s in samples {
            let datum = smooth_sample(&self.config.selector, s)?;
            let mut mapped = self.mapping.map(&datum, &grid)?;
            self.config.transform.apply(&mut mapped, self.winsorize_cap);
            scores.push(self.model.score_one(&mapped)?);
        }
        Ok(scores)
    }

    /// Scores a single raw sample.
    pub fn score_one(&self, sample: &RawSample) -> Result<f64> {
        Ok(self.score(std::slice::from_ref(sample))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_datasets::{EcgConfig, EcgSimulator, SplitConfig};
    use mfod_detect::IsolationForest;
    use mfod_geometry::{Curvature, Speed};

    fn ecg_bivariate(n_norm: usize, n_abn: usize, seed: u64) -> LabeledDataSet {
        EcgSimulator::new(EcgConfig { m: 40, ..Default::default() })
            .unwrap()
            .generate(n_norm, n_abn, seed)
            .unwrap()
            .augment_with(0, |y| y * y)
            .unwrap()
    }

    fn fast_pipeline() -> GeomOutlierPipeline {
        GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Curvature),
            Arc::new(IsolationForest { n_trees: 50, ..Default::default() }),
        )
    }

    #[test]
    fn labels_and_debug() {
        let p = fast_pipeline();
        assert_eq!(p.label(), "iforest(curvature)");
        assert!(format!("{p:?}").contains("curvature"));
        assert_eq!(p.config().grid_len, 40);
        assert_eq!(p.mapping().name(), "curvature");
    }

    #[test]
    fn features_shape() {
        let data = ecg_bivariate(10, 2, 3);
        let p = fast_pipeline();
        let f = p.features(data.samples()).unwrap();
        assert_eq!(f.shape(), (12, 40));
        assert!(f.is_finite());
    }

    #[test]
    fn fit_and_score_end_to_end() {
        let data = ecg_bivariate(36, 12, 5);
        let split = SplitConfig { train_size: 24, contamination: 0.1 };
        let (train, test) = split.split_datasets(&data, 1).unwrap();
        let p = fast_pipeline();
        let auc = p.fit_score_auc(&train, &test).unwrap();
        assert!(auc > 0.55, "AUC {auc}");
    }

    #[test]
    fn score_one_matches_batch() {
        let data = ecg_bivariate(12, 2, 7);
        let p = fast_pipeline();
        let fitted = p.fit(data.samples()).unwrap();
        let batch = fitted.score(data.samples()).unwrap();
        let single = fitted.score_one(&data.samples()[3]).unwrap();
        assert!((batch[3] - single).abs() < 1e-12);
        assert_eq!(fitted.label(), "iforest(curvature)");
        assert!(format!("{fitted:?}").contains("iforest"));
    }

    #[test]
    fn rejects_empty_and_mismatched_domains() {
        let p = fast_pipeline();
        assert!(matches!(p.features(&[]), Err(MfodError::Pipeline(_))));
        let mut samples = ecg_bivariate(3, 0, 1).samples().to_vec();
        // stretch one sample's domain
        let stretched: Vec<f64> = samples[1].t.iter().map(|t| t * 2.0).collect();
        samples[1] = RawSample::new(stretched, samples[1].channels.clone()).unwrap();
        assert!(matches!(p.features(&samples), Err(MfodError::Pipeline(_))));
        let fitted = p.fit(ecg_bivariate(8, 0, 2).samples()).unwrap();
        assert!(fitted.score(&[]).is_err());
    }

    #[test]
    fn scoring_rejects_foreign_domain() {
        let data = ecg_bivariate(8, 0, 3);
        let p = fast_pipeline();
        let fitted = p.fit(data.samples()).unwrap();
        // stretch a sample's domain to [0, 2]
        let s = &data.samples()[0];
        let stretched: Vec<f64> = s.t.iter().map(|t| t * 2.0).collect();
        let foreign = RawSample::new(stretched, s.channels.clone()).unwrap();
        assert!(matches!(
            fitted.score(std::slice::from_ref(&foreign)),
            Err(MfodError::Pipeline(_))
        ));
    }

    #[test]
    fn invalid_grid_config_rejected() {
        let cfg = PipelineConfig { grid_len: 2, ..PipelineConfig::fast() };
        let p = GeomOutlierPipeline::new(
            cfg,
            Arc::new(Speed),
            Arc::new(IsolationForest::default()),
        );
        let data = ecg_bivariate(4, 0, 1);
        assert!(p.features(data.samples()).is_err());
    }

    #[test]
    fn works_with_other_mappings() {
        let data = ecg_bivariate(10, 2, 9);
        let p = GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Speed),
            Arc::new(IsolationForest { n_trees: 30, ..Default::default() }),
        );
        assert_eq!(p.label(), "iforest(speed)");
        let fitted = p.fit(data.samples()).unwrap();
        let scores = fitted.score(data.samples()).unwrap();
        assert_eq!(scores.len(), 12);
    }
}
