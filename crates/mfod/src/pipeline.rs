//! The end-to-end pipeline of the paper: per-channel penalized smoothing →
//! geometric mapping → multivariate outlier detector.

use crate::error::MfodError;
use crate::Result;
use mfod_datasets::LabeledDataSet;
use mfod_detect::{Detector, FittedDetector};
use mfod_fda::{BasisSelector, Grid, MultiFunctionalDatum, RawSample, SelectionPlan};
use mfod_geometry::MappingFunction;
use mfod_linalg::par::{self, Pool};
use mfod_linalg::Matrix;
use std::sync::Arc;

/// Point-wise transform applied to the mapped features before they reach
/// the detector.
///
/// Curvature is heavy-tailed: wherever the smoothed path passes near a
/// stationary point, `κ = ‖X′×X″‖/‖X′‖³` can spike by orders of magnitude
/// on noise alone, and those spikes would dominate any distance-based
/// detector. A monotone compression keeps the ordering information while
/// taming the tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureTransform {
    /// Pass features through unchanged.
    None,
    /// `ln(1 + x)` — the default; sensible for non-negative heavy-tailed
    /// mappings such as curvature and speed.
    Log1p,
    /// `sign(x)·√|x|` — milder compression, defined for signed mappings.
    SignedSqrt,
    /// Clamp every value above the given quantile of the *training*
    /// feature distribution (e.g. `0.99`).
    Winsorize(f64),
}

impl FeatureTransform {
    /// Applies the transform in place. For [`FeatureTransform::Winsorize`],
    /// `cap` must be the training-set quantile (computed by the caller so
    /// that test-time transforms reuse the training cap).
    pub(crate) fn apply(&self, data: &mut [f64], cap: Option<f64>) {
        match *self {
            FeatureTransform::None => {}
            FeatureTransform::Log1p => {
                for v in data.iter_mut() {
                    *v = (1.0 + v.max(0.0)).ln();
                }
            }
            FeatureTransform::SignedSqrt => {
                for v in data.iter_mut() {
                    *v = v.signum() * v.abs().sqrt();
                }
            }
            FeatureTransform::Winsorize(_) => {
                let cap = cap.expect("winsorize cap computed at fit time");
                for v in data.iter_mut() {
                    if *v > cap {
                        *v = cap;
                    }
                }
            }
        }
    }
}

/// Configuration of the smoothing and mapping stages.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Per-channel B-spline selection (the paper chooses basis sizes by
    /// leave-one-out cross-validation, Sec. 4.1).
    pub selector: BasisSelector,
    /// Length of the common evaluation grid for the mapped UFD (the paper
    /// re-evaluates on a regular grid of the same length as the data,
    /// m = 85 for ECG200).
    pub grid_len: usize,
    /// Monotone compression of the mapped features (see
    /// [`FeatureTransform`]).
    pub transform: FeatureTransform,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // Derivative-based mappings need *more* smoothing than prediction-
        // optimal CV selects (a classical FDA caveat: LOOCV optimizes the
        // fit to the function, not to its derivatives, and under-smoothed
        // derivatives create spurious curvature cusps near stationary
        // points). The default therefore fixes a moderate basis with a
        // meaningful roughness penalty; use a custom `selector` to
        // reproduce the pure-LOOCV protocol.
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![16],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 85,
            transform: FeatureTransform::Log1p,
        }
    }
}

impl PipelineConfig {
    /// A cheaper configuration for tests and examples: a small basis-size
    /// ladder (heavier smoothing, appropriate for coarse grids) and a
    /// shorter evaluation grid.
    pub fn fast() -> Self {
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![6, 8],
                ..BasisSelector::default()
            },
            grid_len: 40,
            ..Default::default()
        }
    }

    /// Config invariants shared by the fit path and snapshot restore
    /// (`crate::snapshot`): a restored pipeline must never be in a state
    /// the fit path would have rejected.
    pub(crate) fn validate(&self) -> Result<()> {
        if self.grid_len < 4 {
            return Err(MfodError::Pipeline(format!(
                "grid_len must be >= 4, got {}",
                self.grid_len
            )));
        }
        if let FeatureTransform::Winsorize(q) = self.transform {
            if !(0.0..=1.0).contains(&q) {
                return Err(MfodError::Pipeline(format!(
                    "winsorize quantile must be in [0, 1], got {q}"
                )));
            }
        }
        Ok(())
    }
}

/// The geometric-aggregation outlier detection pipeline
/// (smoother ∘ mapping ∘ detector).
#[derive(Clone)]
pub struct GeomOutlierPipeline {
    config: PipelineConfig,
    mapping: Arc<dyn MappingFunction>,
    detector: Arc<dyn Detector>,
}

impl std::fmt::Debug for GeomOutlierPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeomOutlierPipeline")
            .field("mapping", &self.mapping.name())
            .field("detector", &self.detector.name())
            .field("grid_len", &self.config.grid_len)
            .finish()
    }
}

impl GeomOutlierPipeline {
    /// Assembles a pipeline from its three stages.
    pub fn new(
        config: PipelineConfig,
        mapping: Arc<dyn MappingFunction>,
        detector: Arc<dyn Detector>,
    ) -> Self {
        GeomOutlierPipeline {
            config,
            mapping,
            detector,
        }
    }

    /// `"<detector>(<mapping>)"`, e.g. `"iforest(curvature)"` — the naming
    /// scheme of the paper's Fig. 3 legend.
    pub fn label(&self) -> String {
        format!("{}({})", self.detector.name(), self.mapping.name())
    }

    /// Smooths every channel of a raw sample with the configured selector.
    pub fn smooth_sample(&self, sample: &RawSample) -> Result<MultiFunctionalDatum> {
        smooth_sample(&self.config.selector, sample)
    }

    /// Shared smoothing + mapping loop: validates the configuration, the
    /// common observation domain and consistent channel counts, returning
    /// the raw feature matrix together with the per-channel `(size, λ)`
    /// selection votes accumulated across the batch.
    ///
    /// One [`SelectionPlan`] is built per channel group — all channels of
    /// a sample share its abscissae, so the first sample's grid plans the
    /// whole batch — and the per-(sample × channel) basis selection fans
    /// out over `pool`. Rows are reassembled in sample order and every
    /// sample observed on a different grid falls back to the uncached
    /// per-sample selection, so the output is bit-for-bit identical to
    /// the sequential unplanned loop at any pool size.
    fn raw_features_votes_on(
        &self,
        pool: &Pool,
        samples: &[RawSample],
    ) -> Result<(Matrix, Vec<SelectionVotes>)> {
        self.config.validate()?;
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let (a0, b0) = samples[0].domain();
        let dim = samples[0].dim();
        let grid = Grid::uniform(a0, b0, self.config.grid_len)?;
        // A plan that fails to build is not fatal here: the per-sample
        // fallback reproduces (and correctly attributes) the error on the
        // first sample it affects. `plan_shared` consults the process-wide
        // plan cache, so repeated fits on one grid (e.g. the Fig. 3
        // repetition loops) reuse a single built ladder.
        let plan = self.config.selector.plan_shared(&samples[0].t).ok();
        let rows = pool.try_map(samples.len(), |i| {
            let s = &samples[i];
            let (a, b) = s.domain();
            if !domains_match((a0, b0), (a, b)) {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} domain [{a}, {b}] differs from [{a0}, {b0}]"
                )));
            }
            if s.dim() != dim {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} has {} channels, expected {dim}",
                    s.dim()
                )));
            }
            let (datum, selections) =
                smooth_sample_with_plan(&self.config.selector, plan.as_deref(), s)?;
            let mapped = self.mapping.map(&datum, &grid)?;
            Ok((mapped, selections))
        })?;
        let mut out = Matrix::zeros(samples.len(), grid.len());
        let mut votes: Vec<SelectionVotes> = vec![SelectionVotes::new(); dim];
        for (i, (mapped, selections)) in rows.into_iter().enumerate() {
            out.row_mut(i).copy_from_slice(&mapped);
            for (k, sel) in selections.iter().enumerate() {
                *votes[k].entry((sel.0, sel.1.to_bits())).or_insert(0) += 1;
            }
        }
        Ok((out, votes))
    }

    /// Smooths and maps a batch into the *raw* (untransformed) feature
    /// matrix: row `i` is the mapped UFD of sample `i` on the common grid.
    ///
    /// All samples must share the same observation domain (the paper's
    /// setting: a common interval `T`). Runs on the global worker pool;
    /// see [`GeomOutlierPipeline::raw_features_on`].
    pub fn raw_features(&self, samples: &[RawSample]) -> Result<Matrix> {
        self.raw_features_on(par::global(), samples)
    }

    /// [`GeomOutlierPipeline::raw_features`] on an explicit worker pool.
    pub fn raw_features_on(&self, pool: &Pool, samples: &[RawSample]) -> Result<Matrix> {
        Ok(self.raw_features_votes_on(pool, samples)?.0)
    }

    /// Like [`GeomOutlierPipeline::raw_features`] with the configured
    /// [`FeatureTransform`] applied (the winsorize cap, if any, comes from
    /// this same batch).
    pub fn features(&self, samples: &[RawSample]) -> Result<Matrix> {
        self.features_on(par::global(), samples)
    }

    /// [`GeomOutlierPipeline::features`] on an explicit worker pool.
    pub fn features_on(&self, pool: &Pool, samples: &[RawSample]) -> Result<Matrix> {
        let mut f = self.raw_features_on(pool, samples)?;
        let cap = self.winsorize_cap(&f);
        self.config.transform.apply(f.as_mut_slice(), cap);
        Ok(f)
    }

    fn winsorize_cap(&self, raw: &Matrix) -> Option<f64> {
        match self.config.transform {
            FeatureTransform::Winsorize(q) => {
                Some(mfod_linalg::vector::quantile(raw.as_slice(), q))
            }
            _ => None,
        }
    }

    /// Fits the detector on the mapped training samples.
    ///
    /// Besides training the detector, this records the per-channel basis
    /// selection that won most often across the training set — the frozen
    /// serving path ([`crate::serving::FrozenScorer`]) reuses that
    /// selection instead of re-running cross-validation per sample.
    ///
    /// The smoothing stage builds one [`SelectionPlan`] per channel group
    /// and fans the per-(sample × channel) selection out over the global
    /// worker pool; see [`GeomOutlierPipeline::fit_on`] for an explicit
    /// pool. Fitted artifacts are bit-for-bit identical at any pool size.
    pub fn fit(&self, train: &[RawSample]) -> Result<FittedPipeline> {
        self.fit_on(par::global(), train)
    }

    /// [`GeomOutlierPipeline::fit`] on an explicit worker pool.
    pub fn fit_on(&self, pool: &Pool, train: &[RawSample]) -> Result<FittedPipeline> {
        let (mut features, votes) = {
            let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::FitFeatures);
            self.raw_features_votes_on(pool, train)?
        };
        let selected = votes
            .into_iter()
            .map(|v| {
                let ((size, lambda_bits), _) = v
                    .into_iter()
                    .max_by_key(|&((size, bits), count)| {
                        // most votes; ties broken deterministically toward
                        // the smoother candidate — fewer basis functions,
                        // then the larger penalty λ (λ ≥ 0, so its bit
                        // pattern orders like the value)
                        (count, std::cmp::Reverse(size), bits)
                    })
                    .expect("at least one training sample voted");
                (size, f64::from_bits(lambda_bits))
            })
            .collect();
        let cap = self.winsorize_cap(&features);
        self.config.transform.apply(features.as_mut_slice(), cap);
        let model = {
            let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::FitDetector);
            self.detector.fit(&features)?
        };
        Ok(FittedPipeline {
            config: self.config.clone(),
            mapping: Arc::clone(&self.mapping),
            model,
            label: self.label(),
            winsorize_cap: cap,
            domain: train[0].domain(),
            selected,
        })
    }

    /// Convenience: fit on `train`, score `test`, return the test AUC.
    pub fn fit_score_auc(&self, train: &LabeledDataSet, test: &LabeledDataSet) -> Result<f64> {
        let fitted = self.fit(train.samples())?;
        let scores = fitted.score(test.samples())?;
        Ok(mfod_eval::auc(&scores, test.labels())?)
    }

    /// The mapping stage.
    pub fn mapping(&self) -> &Arc<dyn MappingFunction> {
        &self.mapping
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Per-channel tally of `(basis size, λ-bits)` selections across a
/// training batch.
type SelectionVotes = std::collections::HashMap<(usize, u64), usize>;

/// Numerical tolerance for comparing observation times against the domain
/// `[a, b]` — shared by every domain check in the crate so the exact and
/// frozen paths can never drift apart.
pub(crate) fn domain_tol(a: f64, b: f64) -> f64 {
    1e-9 * (b - a).abs().max(1.0)
}

/// Assembles an `n × m` feature matrix by appending the row `produce(i)`
/// yields for each sample into one flat buffer sized for the whole batch
/// up front — no zero-fill pass, no intermediate per-sample matrix.
/// Shared by the exact ([`FittedPipeline`]) and frozen
/// (`crate::serving::FrozenScorer`) batch-assembly paths so the idiom
/// cannot drift between them.
pub(crate) fn assemble_features<R, E>(
    n: usize,
    m: usize,
    mut produce: impl FnMut(usize) -> std::result::Result<R, E>,
) -> std::result::Result<Matrix, E>
where
    R: AsRef<[f64]>,
{
    let mut data = Vec::with_capacity(n * m);
    for i in 0..n {
        data.extend_from_slice(produce(i)?.as_ref());
    }
    Ok(Matrix::from_vec(n, m, data))
}

/// Whether observation domain `got` matches `expected` up to
/// [`domain_tol`].
pub(crate) fn domains_match(expected: (f64, f64), got: (f64, f64)) -> bool {
    let (a0, b0) = expected;
    let (a, b) = got;
    let tol = domain_tol(a0, b0);
    (a - a0).abs() <= tol && (b - b0).abs() <= tol
}

/// Smooths every channel of a raw sample with cross-validated B-spline
/// selection (the paper's Sec. 4.1 procedure), shared by the pipeline and
/// its fitted form.
pub fn smooth_sample(selector: &BasisSelector, sample: &RawSample) -> Result<MultiFunctionalDatum> {
    Ok(smooth_sample_with_selection(selector, sample)?.0)
}

/// Like [`smooth_sample`], additionally reporting the winning
/// `(basis size, λ)` per channel so callers can persist the selection
/// (the fit path records it for the frozen serving mode).
pub fn smooth_sample_with_selection(
    selector: &BasisSelector,
    sample: &RawSample,
) -> Result<(MultiFunctionalDatum, Vec<(usize, f64)>)> {
    smooth_sample_with_plan(selector, None, sample)
}

/// [`smooth_sample_with_selection`] through an optional cached
/// [`SelectionPlan`]: channels of samples observed on the plan's grid are
/// selected against the precomputed ladder (one O(mL) pass per candidate
/// instead of a fresh O(L³) factorization), anything else falls back to
/// the uncached per-sample path. Results are bit-identical either way.
pub fn smooth_sample_with_plan(
    selector: &BasisSelector,
    plan: Option<&SelectionPlan>,
    sample: &RawSample,
) -> Result<(MultiFunctionalDatum, Vec<(usize, f64)>)> {
    let mut channels = Vec::with_capacity(sample.dim());
    let mut selections = Vec::with_capacity(sample.dim());
    for k in 0..sample.dim() {
        let (ts, ys) = sample.channel(k).expect("validated channel index");
        let fit = match plan {
            Some(plan) => selector.select_with_plan(plan, ts, ys)?,
            None => selector.select(ts, ys)?,
        };
        selections.push((fit.size, fit.lambda));
        channels.push(fit.datum);
    }
    Ok((MultiFunctionalDatum::new(channels)?, selections))
}

/// A fitted pipeline, ready to score unseen raw samples.
///
/// This is the first-class serving artifact of the workspace: it owns the
/// trained basis selection, the feature-transform state (e.g. the training
/// winsorization cap) and the fitted detector, and it is `Send + Sync`, so
/// a single `Arc<FittedPipeline>` can be shared across every scoring
/// thread of an online system (see the `mfod-stream` crate).
pub struct FittedPipeline {
    config: PipelineConfig,
    mapping: Arc<dyn MappingFunction>,
    model: Box<dyn FittedDetector>,
    label: String,
    /// Training-set winsorization cap (only for
    /// [`FeatureTransform::Winsorize`]).
    winsorize_cap: Option<f64>,
    /// Observation domain the model was trained on; scoring rejects samples
    /// from a different domain (their grid features would not be
    /// commensurable with the training features).
    domain: (f64, f64),
    /// Per-channel `(basis size, λ)` selected most often across the
    /// training set — the selection the frozen serving path reuses.
    selected: Vec<(usize, f64)>,
}

impl std::fmt::Debug for FittedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedPipeline")
            .field("label", &self.label)
            .finish()
    }
}

impl FittedPipeline {
    /// Reassembles a fitted pipeline from restored snapshot parts
    /// (`crate::snapshot` validates the parts before calling this).
    pub(crate) fn from_snapshot_parts(
        config: PipelineConfig,
        mapping: Arc<dyn MappingFunction>,
        model: Box<dyn FittedDetector>,
        label: String,
        winsorize_cap: Option<f64>,
        domain: (f64, f64),
        selected: Vec<(usize, f64)>,
    ) -> Self {
        FittedPipeline {
            config,
            mapping,
            model,
            label,
            winsorize_cap,
            domain,
            selected,
        }
    }

    /// The `"<detector>(<mapping>)"` label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The pipeline configuration the model was fitted under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The mapping stage.
    pub fn mapping(&self) -> &Arc<dyn MappingFunction> {
        &self.mapping
    }

    /// The fitted detector.
    pub fn detector(&self) -> &dyn FittedDetector {
        self.model.as_ref()
    }

    /// Observation domain the model was trained on.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Whether samples observed on `domain` would pass this pipeline's
    /// scoring domain check (the training domain, up to the crate's
    /// numerical tolerance). Serving layers use this to reject a
    /// misconfigured stream at construction instead of on the first batch.
    pub fn accepts_domain(&self, domain: (f64, f64)) -> bool {
        domains_match(self.domain, domain)
    }

    /// Training-set winsorization cap, when the transform is
    /// [`FeatureTransform::Winsorize`].
    pub fn winsorize_cap(&self) -> Option<f64> {
        self.winsorize_cap
    }

    /// Per-channel `(basis size, λ)` chosen most often across the training
    /// set (one entry per input channel).
    pub fn selected_bases(&self) -> &[(usize, f64)] {
        &self.selected
    }

    /// Wraps the artifact for sharing across scoring threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    fn check_domain(&self, samples: &[RawSample]) -> Result<Grid> {
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let (a0, b0) = self.domain;
        let dim = self.selected.len();
        for (i, s) in samples.iter().enumerate() {
            let (a, b) = s.domain();
            if !domains_match((a0, b0), (a, b)) {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} scoring domain [{a}, {b}] differs from the training domain \
                     [{a0}, {b0}]"
                )));
            }
            if s.dim() != dim {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} has {} channels, pipeline was trained on {dim}",
                    s.dim()
                )));
            }
        }
        let (a, b) = samples[0].domain();
        Ok(Grid::uniform(a, b, self.config.grid_len)?)
    }

    /// The fully transformed feature vector of one sample on `grid` —
    /// the exact quantity handed to the detector.
    fn feature_row(
        &self,
        sample: &RawSample,
        grid: &Grid,
        plan: Option<&SelectionPlan>,
    ) -> Result<Vec<f64>> {
        let (datum, _) = smooth_sample_with_plan(&self.config.selector, plan, sample)?;
        let mut mapped = self.mapping.map(&datum, grid)?;
        self.config.transform.apply(&mut mapped, self.winsorize_cap);
        Ok(mapped)
    }

    /// Builds the per-batch selection plan for scoring: one plan on the
    /// first sample's grid, shared by every sample observed on it (the
    /// others fall back per sample inside the selector). Served batches
    /// arrive on one fixed grid, so the process-wide plan cache behind
    /// `plan_shared` turns this into a lookup after the first batch.
    fn scoring_plan(&self, samples: &[RawSample]) -> Option<std::sync::Arc<SelectionPlan>> {
        self.config.selector.plan_shared(&samples[0].t).ok()
    }

    /// Smooths, maps and transforms raw samples into the detector's
    /// feature matrix, reusing the training-time transform state.
    ///
    /// The matrix is assembled by appending each feature row into one
    /// flat buffer sized for the whole batch up front — no zero-fill
    /// pass, no per-sample intermediate matrix — and the per-sample
    /// selection itself runs through the grid plan's scratch-reusing
    /// sweep, so steady-state micro-batch scoring performs no
    /// per-candidate allocations (see `SelectionPlan::select`).
    pub fn features(&self, samples: &[RawSample]) -> Result<Matrix> {
        let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::ScoreFeatures);
        let grid = self.check_domain(samples)?;
        let plan = self.scoring_plan(samples);
        assemble_features(samples.len(), grid.len(), |i| {
            self.feature_row(&samples[i], &grid, plan.as_deref())
        })
    }

    /// Scores raw samples; **higher = more outlying**.
    pub fn score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        let features = self.features(samples)?;
        let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::ScoreDetector);
        Ok(self.model.score_batch(&features)?)
    }

    /// Scores raw samples across all available cores.
    ///
    /// Smoothing, mapping and detector scoring are all per-sample
    /// computations, so parallelizing over samples reproduces
    /// [`FittedPipeline::score`] bit for bit — this is the micro-batching
    /// entry point of `mfod-stream`.
    pub fn par_score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        let features = {
            let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::ScoreFeatures);
            let grid = self.check_domain(samples)?;
            let plan = self.scoring_plan(samples);
            let rows = mfod_linalg::par::par_try_map(samples.len(), |i| {
                self.feature_row(&samples[i], &grid, plan.as_deref())
            })?;
            assemble_features(samples.len(), grid.len(), |i| Ok::<_, MfodError>(&rows[i]))?
        };
        let _span = mfod_obs::SpanTimer::start(mfod_obs::Phase::ScoreDetector);
        Ok(self.model.par_score_batch(&features)?)
    }

    /// Scores a single raw sample.
    pub fn score_one(&self, sample: &RawSample) -> Result<f64> {
        Ok(self.score(std::slice::from_ref(sample))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_datasets::{EcgConfig, EcgSimulator, SplitConfig};
    use mfod_detect::IsolationForest;
    use mfod_geometry::{Curvature, Speed};

    fn ecg_bivariate(n_norm: usize, n_abn: usize, seed: u64) -> LabeledDataSet {
        EcgSimulator::new(EcgConfig {
            m: 40,
            ..Default::default()
        })
        .unwrap()
        .generate(n_norm, n_abn, seed)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap()
    }

    fn fast_pipeline() -> GeomOutlierPipeline {
        GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Curvature),
            Arc::new(IsolationForest {
                n_trees: 50,
                ..Default::default()
            }),
        )
    }

    #[test]
    fn labels_and_debug() {
        let p = fast_pipeline();
        assert_eq!(p.label(), "iforest(curvature)");
        assert!(format!("{p:?}").contains("curvature"));
        assert_eq!(p.config().grid_len, 40);
        assert_eq!(p.mapping().name(), "curvature");
    }

    #[test]
    fn features_shape() {
        let data = ecg_bivariate(10, 2, 3);
        let p = fast_pipeline();
        let f = p.features(data.samples()).unwrap();
        assert_eq!(f.shape(), (12, 40));
        assert!(f.is_finite());
    }

    #[test]
    fn fit_and_score_end_to_end() {
        let data = ecg_bivariate(36, 12, 5);
        let split = SplitConfig {
            train_size: 24,
            contamination: 0.1,
        };
        let (train, test) = split.split_datasets(&data, 1).unwrap();
        let p = fast_pipeline();
        let auc = p.fit_score_auc(&train, &test).unwrap();
        assert!(auc > 0.55, "AUC {auc}");
    }

    #[test]
    fn score_one_matches_batch() {
        let data = ecg_bivariate(12, 2, 7);
        let p = fast_pipeline();
        let fitted = p.fit(data.samples()).unwrap();
        let batch = fitted.score(data.samples()).unwrap();
        let single = fitted.score_one(&data.samples()[3]).unwrap();
        assert!((batch[3] - single).abs() < 1e-12);
        assert_eq!(fitted.label(), "iforest(curvature)");
        assert!(format!("{fitted:?}").contains("iforest"));
    }

    #[test]
    fn fitted_pipeline_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FittedPipeline>();
        assert_send_sync::<Arc<FittedPipeline>>();
        let data = ecg_bivariate(10, 2, 13);
        let shared = fast_pipeline().fit(data.samples()).unwrap().into_shared();
        assert_eq!(shared.selected_bases().len(), 2);
        assert!(shared
            .selected_bases()
            .iter()
            .all(|&(size, l)| size >= 4 && l >= 0.0));
        let (a, b) = shared.domain();
        assert!(a < b);
        assert_eq!(shared.detector().dim(), shared.config().grid_len);
        assert!(shared.winsorize_cap().is_none());
        // Concurrent scoring through one shared artifact.
        let scores = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    let samples = data.samples();
                    scope.spawn(move || shared.score(samples).unwrap())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        assert_eq!(scores[0], scores[1]);
        assert_eq!(scores[1], scores[2]);
    }

    #[test]
    fn par_score_is_bit_identical_to_score() {
        let data = ecg_bivariate(18, 5, 17);
        let fitted = fast_pipeline().fit(data.samples()).unwrap();
        let seq = fitted.score(data.samples()).unwrap();
        let par = fitted.par_score(data.samples()).unwrap();
        assert_eq!(
            seq.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        let f = fitted.features(data.samples()).unwrap();
        assert_eq!(f.shape(), (23, 40));
    }

    #[test]
    fn fit_is_bit_identical_across_pool_sizes() {
        let data = ecg_bivariate(20, 6, 11);
        let (train, test) = SplitConfig {
            train_size: 16,
            contamination: 0.1,
        }
        .split_datasets(&data, 2)
        .unwrap();
        let p = fast_pipeline();
        let fitted: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&k| p.fit_on(&Pool::with_threads(k), train.samples()).unwrap())
            .collect();
        let reference = fitted[0].score(test.samples()).unwrap();
        for f in &fitted[1..] {
            assert_eq!(f.selected_bases(), fitted[0].selected_bases());
            let scores = f.score(test.samples()).unwrap();
            assert_eq!(
                reference.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn mixed_grid_batch_matches_unplanned_per_sample_path() {
        // One sample on a perturbed (same-domain) grid: the plan built from
        // sample 0 cannot cover it, so it must take the per-sample fallback
        // — and the whole batch must still equal the fully unplanned loop.
        let data = ecg_bivariate(8, 2, 19);
        let mut samples = data.samples().to_vec();
        let mut warped = samples[4].t.clone();
        let last = warped.len() - 1;
        for t in &mut warped[1..last] {
            *t += 1e-4 * (*t * 37.0).sin().abs();
        }
        samples[4] = RawSample::new(warped, samples[4].channels.clone()).unwrap();
        let p = fast_pipeline();
        let planned = p.raw_features(&samples).unwrap();
        // hand-rolled unplanned reference loop
        let (a, b) = samples[0].domain();
        let grid = Grid::uniform(a, b, p.config().grid_len).unwrap();
        for (i, s) in samples.iter().enumerate() {
            let (datum, _) = smooth_sample_with_selection(&p.config().selector, s).unwrap();
            let mapped = p.mapping().map(&datum, &grid).unwrap();
            for (j, v) in mapped.iter().enumerate() {
                assert_eq!(
                    planned[(i, j)].to_bits(),
                    v.to_bits(),
                    "sample {i} grid point {j}"
                );
            }
        }
        // fitting the mixed batch works and scores deterministically
        let f1 = p.fit(&samples).unwrap();
        let f2 = p.fit(&samples).unwrap();
        assert_eq!(f1.selected_bases(), f2.selected_bases());
    }

    #[test]
    fn rejects_empty_and_mismatched_domains() {
        let p = fast_pipeline();
        assert!(matches!(p.features(&[]), Err(MfodError::Pipeline(_))));
        let mut samples = ecg_bivariate(3, 0, 1).samples().to_vec();
        // stretch one sample's domain
        let stretched: Vec<f64> = samples[1].t.iter().map(|t| t * 2.0).collect();
        samples[1] = RawSample::new(stretched, samples[1].channels.clone()).unwrap();
        assert!(matches!(p.features(&samples), Err(MfodError::Pipeline(_))));
        let fitted = p.fit(ecg_bivariate(8, 0, 2).samples()).unwrap();
        assert!(fitted.score(&[]).is_err());
    }

    #[test]
    fn fit_rejects_inconsistent_channel_counts() {
        let data = ecg_bivariate(4, 0, 21);
        let mut samples = data.samples().to_vec();
        // strip the second channel from one sample
        samples[2] =
            RawSample::new(samples[2].t.clone(), vec![samples[2].channels[0].clone()]).unwrap();
        let p = fast_pipeline();
        assert!(matches!(p.fit(&samples), Err(MfodError::Pipeline(_))));
        assert!(matches!(
            p.raw_features(&samples),
            Err(MfodError::Pipeline(_))
        ));
    }

    #[test]
    fn scoring_rejects_foreign_domain() {
        let data = ecg_bivariate(8, 0, 3);
        let p = fast_pipeline();
        let fitted = p.fit(data.samples()).unwrap();
        // stretch a sample's domain to [0, 2]
        let s = &data.samples()[0];
        let stretched: Vec<f64> = s.t.iter().map(|t| t * 2.0).collect();
        let foreign = RawSample::new(stretched, s.channels.clone()).unwrap();
        assert!(matches!(
            fitted.score(std::slice::from_ref(&foreign)),
            Err(MfodError::Pipeline(_))
        ));
    }

    #[test]
    fn invalid_grid_config_rejected() {
        let cfg = PipelineConfig {
            grid_len: 2,
            ..PipelineConfig::fast()
        };
        let p =
            GeomOutlierPipeline::new(cfg, Arc::new(Speed), Arc::new(IsolationForest::default()));
        let data = ecg_bivariate(4, 0, 1);
        assert!(p.features(data.samples()).is_err());
    }

    #[test]
    fn works_with_other_mappings() {
        let data = ecg_bivariate(10, 2, 9);
        let p = GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Speed),
            Arc::new(IsolationForest {
                n_trees: 30,
                ..Default::default()
            }),
        );
        assert_eq!(p.label(), "iforest(speed)");
        let fitted = p.fit(data.samples()).unwrap();
        let scores = fitted.score(data.samples()).unwrap();
        assert_eq!(scores.len(), 12);
    }
}
