//! Snapshot forms of the serving artifacts: [`FittedPipeline`] and
//! [`FrozenScorer`].
//!
//! A fitted pipeline owns two trait objects (the mapping and the fitted
//! detector); its snapshot replaces both with the concrete tagged unions
//! from `mfod-geometry` / `mfod-detect`. Restoring re-runs the domain
//! validation the fit path enforced, rebuilds the trait objects, and
//! re-checks cross-field consistency (detector dimension vs grid length,
//! stored label vs stage names, winsorize state vs the transform) so a
//! tampered-but-checksummed file still fails with a typed error.
//!
//! **Bit-exactness.** All numeric state travels as raw bit patterns, and
//! both scoring paths are pure functions of that state, so a reloaded
//! pipeline scores **bit-for-bit identically** to the in-memory
//! original — on the exact path (per-sample re-selection runs the same
//! fp ops on the same selector configuration) and on the frozen path
//! (the scorer's smoothing operators are re-derived deterministically
//! from the restored selection; see [`FrozenScorerSnapshot`]).

use crate::ensemble::FittedMappingEnsemble;
use crate::error::MfodError;
use crate::pipeline::{FeatureTransform, FittedPipeline, PipelineConfig};
use crate::serving::FrozenScorer;
use crate::Result;
use mfod_detect::DetectorSnapshot;
use mfod_fda::BasisSelector;
use mfod_geometry::{snapshot_mapping, MappingSnapshot};
use mfod_persist::{Decode, Decoder, Encode, Encoder, PersistError, Restorable, Snapshot};
use std::path::Path;
use std::sync::Arc;

/// Artifact-kind tag of [`PipelineSnapshot`] files.
pub const KIND_FITTED_PIPELINE: u32 = 1;
/// Artifact-kind tag of [`FrozenScorerSnapshot`] files.
pub const KIND_FROZEN_SCORER: u32 = 2;
/// Artifact-kind tag reserved by `mfod-stream` for calibrator files.
pub const KIND_THRESHOLD_CALIBRATOR: u32 = 3;
/// Artifact-kind tag of [`EnsembleSnapshot`] files.
pub const KIND_MAPPING_ENSEMBLE: u32 = 4;
/// Artifact-kind tag of [`crate::baselines::DepthBaselineSnapshot`] files.
pub const KIND_DEPTH_BASELINE: u32 = 5;

impl Encode for FeatureTransform {
    fn encode(&self, w: &mut Encoder) {
        match *self {
            FeatureTransform::None => w.put_u8(0),
            FeatureTransform::Log1p => w.put_u8(1),
            FeatureTransform::SignedSqrt => w.put_u8(2),
            FeatureTransform::Winsorize(q) => {
                w.put_u8(3);
                w.put_f64(q);
            }
        }
    }
}

impl Decode for FeatureTransform {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(match r.take_u8()? {
            0 => FeatureTransform::None,
            1 => FeatureTransform::Log1p,
            2 => FeatureTransform::SignedSqrt,
            3 => FeatureTransform::Winsorize(r.take_f64()?),
            tag => {
                return Err(PersistError::UnknownTag {
                    what: "feature transform",
                    tag: u32::from(tag),
                })
            }
        })
    }
}

impl Encode for PipelineConfig {
    fn encode(&self, w: &mut Encoder) {
        self.selector.encode(w);
        w.put_usize(self.grid_len);
        self.transform.encode(w);
    }
}

impl Decode for PipelineConfig {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(PipelineConfig {
            selector: BasisSelector::decode(r)?,
            grid_len: r.take_usize()?,
            transform: FeatureTransform::decode(r)?,
        })
    }
}

/// The on-disk form of a [`FittedPipeline`].
#[derive(Debug, Clone)]
pub struct PipelineSnapshot {
    /// Smoothing/mapping configuration the model was fitted under.
    pub config: PipelineConfig,
    /// Concrete form of the mapping stage.
    pub mapping: MappingSnapshot,
    /// Concrete form of the fitted detector.
    pub detector: DetectorSnapshot,
    /// The `"<detector>(<mapping>)"` label.
    pub label: String,
    /// Training-set winsorization cap, when the transform winsorizes.
    pub winsorize_cap: Option<f64>,
    /// Observation domain the model was trained on.
    pub domain: (f64, f64),
    /// Per-channel `(basis size, λ)` winning selection.
    pub selected: Vec<(usize, f64)>,
}

impl Encode for PipelineSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.mapping.encode(w);
        self.detector.encode(w);
        self.label.encode(w);
        self.winsorize_cap.encode(w);
        w.put_f64(self.domain.0);
        w.put_f64(self.domain.1);
        self.selected.encode(w);
    }
}

impl Decode for PipelineSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(PipelineSnapshot {
            config: PipelineConfig::decode(r)?,
            mapping: MappingSnapshot::decode(r)?,
            detector: DetectorSnapshot::decode(r)?,
            label: String::decode(r)?,
            winsorize_cap: Option::decode(r)?,
            domain: (r.take_f64()?, r.take_f64()?),
            selected: Vec::decode(r)?,
        })
    }
}

impl Snapshot for PipelineSnapshot {
    const KIND: u32 = KIND_FITTED_PIPELINE;
    const NAME: &'static str = "fitted-pipeline";
}

impl PipelineSnapshot {
    /// Rebuilds the live pipeline, re-validating every cross-field
    /// invariant the fit path established.
    pub fn restore(self) -> Result<FittedPipeline> {
        // the fit path's own config validation (grid_len floor, winsorize
        // quantile range) — a snapshot must not resurrect a config the
        // fit path would have rejected
        self.config.validate()?;
        let (a, b) = self.domain;
        if !(a.is_finite() && b.is_finite() && a < b) {
            return Err(MfodError::Pipeline(format!(
                "snapshot domain [{a}, {b}] is not a valid interval"
            )));
        }
        if self.selected.is_empty() {
            return Err(MfodError::Pipeline(
                "snapshot records no per-channel selection".into(),
            ));
        }
        let mapping = self.mapping.restore();
        let expected_label = format!("{}({})", self.detector.name(), mapping.name());
        if self.label != expected_label {
            return Err(MfodError::Pipeline(format!(
                "snapshot label '{}' disagrees with its stages '{expected_label}'",
                self.label
            )));
        }
        match self.config.transform {
            FeatureTransform::Winsorize(_) => {
                if !self.winsorize_cap.is_some_and(f64::is_finite) {
                    return Err(MfodError::Pipeline(
                        "winsorizing snapshot is missing a finite training cap".into(),
                    ));
                }
            }
            _ => {
                if self.winsorize_cap.is_some() {
                    return Err(MfodError::Pipeline(
                        "non-winsorizing snapshot carries a winsorize cap".into(),
                    ));
                }
            }
        }
        let model = self.detector.into_fitted();
        if model.dim() != self.config.grid_len {
            return Err(MfodError::Pipeline(format!(
                "snapshot detector expects {} features, grid length is {}",
                model.dim(),
                self.config.grid_len
            )));
        }
        Ok(FittedPipeline::from_snapshot_parts(
            self.config,
            mapping,
            model,
            self.label,
            self.winsorize_cap,
            self.domain,
            self.selected,
        ))
    }
}

impl Restorable for FittedPipeline {
    type Snapshot = PipelineSnapshot;

    fn restore(snapshot: PipelineSnapshot) -> std::result::Result<Self, String> {
        snapshot.restore().map_err(|e| e.to_string())
    }
}

impl FittedPipeline {
    /// Converts this pipeline into its persistable snapshot form.
    ///
    /// Fails with a typed error when either trait-object stage (a custom
    /// mapping or detector) does not implement its snapshot hook.
    pub fn snapshot(&self) -> Result<PipelineSnapshot> {
        let mapping = snapshot_mapping(self.mapping().as_ref())?;
        let detector = self.detector().snapshot().ok_or_else(|| {
            MfodError::Pipeline(format!(
                "detector of pipeline '{}' does not support snapshots",
                self.label()
            ))
        })?;
        Ok(PipelineSnapshot {
            config: self.config().clone(),
            mapping,
            detector,
            label: self.label().to_string(),
            winsorize_cap: self.winsorize_cap(),
            domain: self.domain(),
            selected: self.selected_bases().to_vec(),
        })
    }

    /// Snapshots this pipeline and writes it to `path` atomically.
    pub fn save(&self, path: &Path) -> Result<()> {
        Ok(mfod_persist::save(&self.snapshot()?, path)?)
    }

    /// Loads a pipeline saved with [`FittedPipeline::save`], re-running
    /// all restore validation. The result scores bit-identically to the
    /// pipeline that was saved.
    pub fn load(path: &Path) -> Result<FittedPipeline> {
        mfod_persist::load::<PipelineSnapshot>(path)?.restore()
    }

    /// Loads a pipeline by memory-mapping the snapshot file: identical
    /// validation and bit-identical scores to [`FittedPipeline::load`],
    /// with large matrix payloads (detector weights, smoothing systems)
    /// served zero-copy out of the mapping instead of copied at install.
    /// The restored pipeline owns the keep-alive handles, so the mapping
    /// lives exactly as long as the pipeline's views into it.
    pub fn load_mapped(path: &Path) -> Result<FittedPipeline> {
        mfod_persist::load_mapped::<PipelineSnapshot>(path)?.restore()
    }
}

/// The on-disk form of a [`FrozenScorer`].
///
/// Only the pipeline and the frozen observation times are stored: the
/// per-channel smoothing operators are re-derived by
/// [`FrozenScorer::new`] on restore, which is deterministic — the same
/// floating-point assembly on the same restored selection — so the
/// restored scorer's operators, and therefore its scores, are
/// bit-identical to the original's. (The operators themselves can be
/// persisted standalone via `mfod_fda::FrozenSmootherSnapshot`.)
#[derive(Debug, Clone)]
pub struct FrozenScorerSnapshot {
    /// The underlying fitted pipeline.
    pub pipeline: PipelineSnapshot,
    /// Observation times the scorer is frozen to.
    pub ts: Vec<f64>,
}

impl Encode for FrozenScorerSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.pipeline.encode(w);
        self.ts.encode(w);
    }
}

impl Decode for FrozenScorerSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(FrozenScorerSnapshot {
            pipeline: PipelineSnapshot::decode(r)?,
            ts: Vec::decode(r)?,
        })
    }
}

impl Snapshot for FrozenScorerSnapshot {
    const KIND: u32 = KIND_FROZEN_SCORER;
    const NAME: &'static str = "frozen-scorer";
}

impl FrozenScorerSnapshot {
    /// Rebuilds the live scorer (pipeline restore validation plus the
    /// freeze-time checks of [`FrozenScorer::new`]).
    pub fn restore(self) -> Result<FrozenScorer> {
        FrozenScorer::new(Arc::new(self.pipeline.restore()?), &self.ts)
    }
}

impl Restorable for FrozenScorer {
    type Snapshot = FrozenScorerSnapshot;

    fn restore(snapshot: FrozenScorerSnapshot) -> std::result::Result<Self, String> {
        snapshot.restore().map_err(|e| e.to_string())
    }
}

impl FrozenScorer {
    /// Converts this scorer into its persistable snapshot form.
    pub fn snapshot(&self) -> Result<FrozenScorerSnapshot> {
        Ok(FrozenScorerSnapshot {
            pipeline: self.pipeline().snapshot()?,
            ts: self.ts().to_vec(),
        })
    }

    /// Snapshots this scorer and writes it to `path` atomically.
    pub fn save(&self, path: &Path) -> Result<()> {
        Ok(mfod_persist::save(&self.snapshot()?, path)?)
    }

    /// Loads a scorer saved with [`FrozenScorer::save`].
    pub fn load(path: &Path) -> Result<FrozenScorer> {
        mfod_persist::load::<FrozenScorerSnapshot>(path)?.restore()
    }

    /// Loads a scorer by memory-mapping the snapshot file — the
    /// zero-copy twin of [`FrozenScorer::load`]; see
    /// [`FittedPipeline::load_mapped`].
    pub fn load_mapped(path: &Path) -> Result<FrozenScorer> {
        mfod_persist::load_mapped::<FrozenScorerSnapshot>(path)?.restore()
    }
}

/// The on-disk form of a [`FittedMappingEnsemble`]
/// (`crate::ensemble`): one [`PipelineSnapshot`] per member, in member
/// order.
///
/// The *unfitted* [`crate::MappingEnsemble`] carries unfitted detector
/// trait objects with no configuration codec, so — like everywhere else
/// in the persistence subsystem — it is the **fitted** serving artifact
/// that persists: a restored ensemble scores without refitting any
/// member, which is exactly the restart cost the ROADMAP called out.
#[derive(Debug, Clone)]
pub struct EnsembleSnapshot {
    /// Member snapshots, in member order.
    pub members: Vec<PipelineSnapshot>,
}

impl Encode for EnsembleSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.members.encode(w);
    }
}

impl Decode for EnsembleSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(EnsembleSnapshot {
            members: Vec::decode(r)?,
        })
    }
}

impl Snapshot for EnsembleSnapshot {
    const KIND: u32 = KIND_MAPPING_ENSEMBLE;
    const NAME: &'static str = "mapping-ensemble";
}

impl EnsembleSnapshot {
    /// Rebuilds the live ensemble, running every member's full restore
    /// validation plus the ensemble's own invariant (at least one
    /// member, exactly like [`crate::MappingEnsemble::fit`] enforces).
    pub fn restore(self) -> Result<FittedMappingEnsemble> {
        if self.members.is_empty() {
            return Err(MfodError::Pipeline(
                "ensemble snapshot has no members".into(),
            ));
        }
        let members = self
            .members
            .into_iter()
            .map(PipelineSnapshot::restore)
            .collect::<Result<Vec<_>>>()?;
        Ok(FittedMappingEnsemble::from_members(members))
    }
}

impl Restorable for FittedMappingEnsemble {
    type Snapshot = EnsembleSnapshot;

    fn restore(snapshot: EnsembleSnapshot) -> std::result::Result<Self, String> {
        snapshot.restore().map_err(|e| e.to_string())
    }
}

impl FittedMappingEnsemble {
    /// Converts this ensemble into its persistable snapshot form; fails
    /// with a typed error if any member's stage lacks a snapshot hook.
    pub fn snapshot(&self) -> Result<EnsembleSnapshot> {
        Ok(EnsembleSnapshot {
            members: self
                .members()
                .iter()
                .map(FittedPipeline::snapshot)
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Snapshots this ensemble and writes it to `path` atomically.
    pub fn save(&self, path: &Path) -> Result<()> {
        Ok(mfod_persist::save(&self.snapshot()?, path)?)
    }

    /// Loads an ensemble saved with [`FittedMappingEnsemble::save`],
    /// re-running all member restore validation. The result scores
    /// bit-identically to the ensemble that was saved.
    pub fn load(path: &Path) -> Result<FittedMappingEnsemble> {
        mfod_persist::load::<EnsembleSnapshot>(path)?.restore()
    }

    /// Loads an ensemble by memory-mapping the snapshot file — the
    /// zero-copy twin of [`FittedMappingEnsemble::load`]; see
    /// [`FittedPipeline::load_mapped`].
    pub fn load_mapped(path: &Path) -> Result<FittedMappingEnsemble> {
        mfod_persist::load_mapped::<EnsembleSnapshot>(path)?.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GeomOutlierPipeline;
    use mfod_datasets::{EcgConfig, EcgSimulator, LabeledDataSet};
    use mfod_detect::{IsolationForest, OcSvm};
    use mfod_geometry::{Curvature, Speed};

    fn ecg(n_norm: usize, n_abn: usize, seed: u64) -> LabeledDataSet {
        EcgSimulator::new(EcgConfig {
            m: 32,
            ..Default::default()
        })
        .unwrap()
        .generate(n_norm, n_abn, seed)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap()
    }

    fn fitted(data: &LabeledDataSet) -> FittedPipeline {
        GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Curvature),
            Arc::new(IsolationForest {
                n_trees: 20,
                ..Default::default()
            }),
        )
        .fit(data.samples())
        .unwrap()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: score {i}");
        }
    }

    #[test]
    fn pipeline_roundtrip_scores_bit_identically() {
        let data = ecg(14, 4, 5);
        let pipeline = fitted(&data);
        let bytes = mfod_persist::to_bytes(&pipeline.snapshot().unwrap());
        let snap: PipelineSnapshot = mfod_persist::from_bytes(&bytes).unwrap();
        let restored = snap.restore().unwrap();
        assert_eq!(restored.label(), pipeline.label());
        assert_eq!(restored.domain(), pipeline.domain());
        assert_eq!(restored.selected_bases(), pipeline.selected_bases());
        let a = pipeline.score(data.samples()).unwrap();
        let b = restored.score(data.samples()).unwrap();
        assert_bits_eq(&a, &b, "exact path");
        let pa = pipeline.par_score(data.samples()).unwrap();
        let pb = restored.par_score(data.samples()).unwrap();
        assert_bits_eq(&pa, &pb, "parallel exact path");
    }

    #[test]
    fn pipeline_reencode_is_byte_identical() {
        let data = ecg(10, 2, 9);
        let pipeline = fitted(&data);
        let bytes = mfod_persist::to_bytes(&pipeline.snapshot().unwrap());
        let snap: PipelineSnapshot = mfod_persist::from_bytes(&bytes).unwrap();
        assert_eq!(mfod_persist::to_bytes(&snap), bytes);
        // and a restored pipeline re-snapshots to the same bytes again
        let restored = snap.restore().unwrap();
        assert_eq!(mfod_persist::to_bytes(&restored.snapshot().unwrap()), bytes);
    }

    #[test]
    fn frozen_scorer_roundtrip_scores_bit_identically() {
        let data = ecg(14, 4, 7);
        let ts = data.samples()[0].t.clone();
        let pipeline = Arc::new(fitted(&data));
        let frozen = FrozenScorer::new(Arc::clone(&pipeline), &ts).unwrap();
        let bytes = mfod_persist::to_bytes(&frozen.snapshot().unwrap());
        let restored = mfod_persist::from_bytes::<FrozenScorerSnapshot>(&bytes)
            .unwrap()
            .restore()
            .unwrap();
        let a = frozen.score(data.samples()).unwrap();
        let b = restored.score(data.samples()).unwrap();
        assert_bits_eq(&a, &b, "frozen path");
    }

    #[test]
    fn save_load_file_helpers() {
        let dir = std::env::temp_dir().join(format!("mfod-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = ecg(10, 3, 3);
        let pipeline = fitted(&data);
        let path = dir.join("pipeline.mfod");
        pipeline.save(&path).unwrap();
        let restored = FittedPipeline::load(&path).unwrap();
        assert_bits_eq(
            &pipeline.score(data.samples()).unwrap(),
            &restored.score(data.samples()).unwrap(),
            "file roundtrip",
        );
        let ts = data.samples()[0].t.clone();
        let frozen = FrozenScorer::new(Arc::new(pipeline), &ts).unwrap();
        let fpath = dir.join("frozen.mfod");
        frozen.save(&fpath).unwrap();
        let frestored = FrozenScorer::load(&fpath).unwrap();
        assert_bits_eq(
            &frozen.score(data.samples()).unwrap(),
            &frestored.score(data.samples()).unwrap(),
            "frozen file roundtrip",
        );
        // loading the wrong artifact kind is typed
        assert!(matches!(
            FrozenScorer::load(&path),
            Err(MfodError::Persist(PersistError::WrongKind { .. }))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapped_load_scores_bit_identically_and_outlives_the_file() {
        let dir = std::env::temp_dir().join(format!("mfod-snap-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = ecg(12, 3, 21);
        // OcSvm carries a support-vector `Matrix`, so this restore exercises
        // the zero-copy decode path over the mapped file.
        let pipeline = GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Curvature),
            Arc::new(OcSvm::with_nu(0.2).unwrap()),
        )
        .fit(data.samples())
        .unwrap();
        let path = dir.join("pipeline.mfod");
        pipeline.save(&path).unwrap();
        let eager = FittedPipeline::load(&path).unwrap();
        let mapped = FittedPipeline::load_mapped(&path).unwrap();
        // The restored model keeps the mapping alive on its own: deleting
        // the file (and its directory) must not invalidate borrowed state.
        std::fs::remove_dir_all(&dir).unwrap();
        let a = pipeline.score(data.samples()).unwrap();
        let b = eager.score(data.samples()).unwrap();
        let c = mapped.score(data.samples()).unwrap();
        assert_bits_eq(&a, &b, "eager load");
        assert_bits_eq(&a, &c, "mapped load");
        assert_bits_eq(
            &pipeline.par_score(data.samples()).unwrap(),
            &mapped.par_score(data.samples()).unwrap(),
            "mapped parallel",
        );
        // wrong-kind rejection is identical across tiers
        let fs_path = std::env::temp_dir().join(format!("mfod-snap-map2-{}", std::process::id()));
        std::fs::create_dir_all(&fs_path).unwrap();
        let p2 = fs_path.join("pipeline.mfod");
        pipeline.save(&p2).unwrap();
        assert!(matches!(
            FrozenScorer::load_mapped(&p2),
            Err(MfodError::Persist(PersistError::WrongKind { .. }))
        ));
        std::fs::remove_dir_all(&fs_path).unwrap();
    }

    #[test]
    fn ocsvm_pipeline_roundtrips_too() {
        let data = ecg(12, 3, 11);
        let pipeline = GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Speed),
            Arc::new(OcSvm::with_nu(0.2).unwrap()),
        )
        .fit(data.samples())
        .unwrap();
        let bytes = mfod_persist::to_bytes(&pipeline.snapshot().unwrap());
        let restored = mfod_persist::from_bytes::<PipelineSnapshot>(&bytes)
            .unwrap()
            .restore()
            .unwrap();
        assert_bits_eq(
            &pipeline.score(data.samples()).unwrap(),
            &restored.score(data.samples()).unwrap(),
            "ocsvm(speed)",
        );
    }

    #[test]
    fn ensemble_roundtrip_scores_bit_identically() {
        use crate::ensemble::MappingEnsemble;
        let data = ecg(14, 4, 23);
        let member = |mapping: Arc<dyn mfod_geometry::MappingFunction>| {
            GeomOutlierPipeline::new(
                PipelineConfig::fast(),
                mapping,
                Arc::new(IsolationForest {
                    n_trees: 20,
                    ..Default::default()
                }),
            )
        };
        let fitted = MappingEnsemble::new()
            .with_member(member(Arc::new(Curvature)))
            .with_member(member(Arc::new(Speed)))
            .fit(data.samples())
            .unwrap();
        let bytes = mfod_persist::to_bytes(&fitted.snapshot().unwrap());
        let snap: EnsembleSnapshot = mfod_persist::from_bytes(&bytes).unwrap();
        assert_eq!(snap.members.len(), 2);
        let restored = snap.restore().unwrap();
        assert_eq!(restored.member_labels(), fitted.member_labels());
        // no member refits on restore, and the scores are bit-identical
        let (a, contrib_a) = fitted.score_decomposed(data.samples()).unwrap();
        let (b, contrib_b) = restored.score_decomposed(data.samples()).unwrap();
        assert_bits_eq(&a, &b, "ensemble scores");
        assert_eq!(contrib_a, contrib_b);
        // re-encode is byte-identical
        assert_eq!(mfod_persist::to_bytes(&restored.snapshot().unwrap()), bytes);
        // file helpers + wrong-kind rejection
        let dir = std::env::temp_dir().join(format!("mfod-ens-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ensemble.mfod");
        fitted.save(&path).unwrap();
        let from_file = crate::ensemble::FittedMappingEnsemble::load(&path).unwrap();
        assert_bits_eq(
            &a,
            &from_file.score(data.samples()).unwrap(),
            "ensemble file roundtrip",
        );
        assert!(matches!(
            FittedPipeline::load(&path),
            Err(MfodError::Persist(PersistError::WrongKind { .. }))
        ));
        // empty member list is rejected
        assert!(matches!(
            EnsembleSnapshot { members: vec![] }.restore(),
            Err(MfodError::Pipeline(_))
        ));
        // a tampered member fails the member's own restore validation
        let mut bad: EnsembleSnapshot = mfod_persist::from_bytes(&bytes).unwrap();
        bad.members[1].label = "lof(torsion)".into();
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // corruption/truncation is typed, never a panic
        for n in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(mfod_persist::from_bytes::<EnsembleSnapshot>(&bytes[..n]).is_err());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ensemble_registry_hot_swap() {
        use crate::ensemble::{FittedMappingEnsemble, MappingEnsemble};
        use mfod_persist::ModelRegistry;
        let data = ecg(12, 3, 29);
        let fitted = MappingEnsemble::new()
            .with_member(GeomOutlierPipeline::new(
                PipelineConfig::fast(),
                Arc::new(Curvature),
                Arc::new(IsolationForest {
                    n_trees: 15,
                    ..Default::default()
                }),
            ))
            .fit(data.samples())
            .unwrap();
        let reg: ModelRegistry<FittedMappingEnsemble> = ModelRegistry::new();
        reg.install_bytes(&mfod_persist::to_bytes(&fitted.snapshot().unwrap()))
            .unwrap();
        let active = reg.active().unwrap();
        assert_bits_eq(
            &fitted.score(data.samples()).unwrap(),
            &active.score(data.samples()).unwrap(),
            "registry-restored ensemble",
        );
    }

    #[test]
    fn tampered_cross_field_state_is_rejected() {
        let data = ecg(10, 2, 13);
        let pipeline = fitted(&data);
        let snap = pipeline.snapshot().unwrap();
        // inconsistent label
        let mut bad = snap.clone();
        bad.label = "lof(torsion)".into();
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // spurious winsorize cap under a non-winsorizing transform
        let mut bad = snap.clone();
        bad.winsorize_cap = Some(1.0);
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // inverted domain
        let mut bad = snap.clone();
        bad.domain = (1.0, 0.0);
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // empty channel selection
        let mut bad = snap.clone();
        bad.selected.clear();
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // grid length no longer matching the detector's feature dim
        let mut bad = snap.clone();
        bad.config.grid_len += 1;
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // a config the fit path would reject (grid_len floor)
        let mut bad = snap.clone();
        bad.config.grid_len = 3;
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
        // an out-of-range winsorize quantile fails config validation even
        // with a superficially consistent cap
        let mut bad = snap;
        bad.config.transform = FeatureTransform::Winsorize(5.0);
        bad.winsorize_cap = Some(1.0);
        assert!(matches!(bad.restore(), Err(MfodError::Pipeline(_))));
    }

    #[test]
    fn truncated_and_corrupted_pipeline_bytes_are_typed() {
        let data = ecg(10, 2, 17);
        let pipeline = fitted(&data);
        let bytes = mfod_persist::to_bytes(&pipeline.snapshot().unwrap());
        for n in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(mfod_persist::from_bytes::<PipelineSnapshot>(&bytes[..n]).is_err());
        }
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(matches!(
            mfod_persist::from_bytes::<PipelineSnapshot>(&corrupt),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }
}
