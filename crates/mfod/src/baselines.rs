//! Adapters running the depth-based baselines (FUNTA, Dir.out, …) under the
//! same train/test protocol as the pipeline.
//!
//! Depth methods have no fit/predict split: a sample's score is its
//! outlyingness *relative to a reference sample*. Following the paper's
//! protocol (the baselines "take the MFD as input"), a test sample is
//! scored against the training set: we build the joint dataset
//! `train ∪ test`, score it, and report the test part. Because the training
//! composition varies with the contamination level `c`, the baselines'
//! AUC degrades as `c` grows — the robustness effect Fig. 3 measures.

use crate::error::MfodError;
use crate::Result;
use mfod_datasets::LabeledDataSet;
use mfod_depth::{FunctionalOutlierScorer, GriddedDataSet};
use mfod_linalg::Matrix;
use std::sync::Arc;

/// A depth-based baseline bound to the joint-scoring protocol.
#[derive(Clone)]
pub struct DepthBaseline {
    scorer: Arc<dyn FunctionalOutlierScorer>,
}

impl std::fmt::Debug for DepthBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepthBaseline")
            .field("scorer", &self.scorer.name())
            .finish()
    }
}

impl DepthBaseline {
    /// Wraps a functional outlyingness scorer.
    pub fn new(scorer: Arc<dyn FunctionalOutlierScorer>) -> Self {
        DepthBaseline { scorer }
    }

    /// The scorer's name (e.g. `"funta"`, `"dir.out"`).
    pub fn name(&self) -> &'static str {
        self.scorer.name()
    }

    /// Converts raw labeled samples (sharing a common measurement grid)
    /// into the gridded format of the depth crate.
    pub fn gridded(data: &LabeledDataSet) -> Result<GriddedDataSet> {
        if data.is_empty() {
            return Err(MfodError::Pipeline("empty dataset".into()));
        }
        let grid = data.samples()[0].t.clone();
        let mut mats = Vec::with_capacity(data.len());
        for (i, s) in data.samples().iter().enumerate() {
            if s.t != grid {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} uses a different measurement grid; depth \
                     baselines need a common grid"
                )));
            }
            let mut m = Matrix::zeros(s.len(), s.dim());
            for (k, c) in s.channels.iter().enumerate() {
                for (j, &v) in c.iter().enumerate() {
                    m[(j, k)] = v;
                }
            }
            mats.push(m);
        }
        Ok(GriddedDataSet::new(grid, mats)?)
    }

    /// Scores the test samples against the training reference (the paper's
    /// protocol: methods are fit on the — possibly contaminated — training
    /// set) and returns test scores (higher = more outlying) in test order.
    pub fn score_test(&self, train: &LabeledDataSet, test: &LabeledDataSet) -> Result<Vec<f64>> {
        let train_g = Self::gridded(train)?;
        let test_g = Self::gridded(test)?;
        Ok(self.scorer.score_against(&train_g, &test_g)?)
    }

    /// Convenience: test AUC under the joint-scoring protocol.
    pub fn auc(&self, train: &LabeledDataSet, test: &LabeledDataSet) -> Result<f64> {
        let scores = self.score_test(train, test)?;
        Ok(mfod_eval::auc(&scores, test.labels())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_datasets::{OutlierType, SplitConfig, TaxonomyConfig};
    use mfod_depth::{DirOut, Funta};

    fn shape_data() -> LabeledDataSet {
        TaxonomyConfig {
            m: 40,
            noise_std: 0.03,
        }
        .generate(OutlierType::ShapePersistent, 40, 10, 11)
        .unwrap()
    }

    #[test]
    fn gridded_conversion_shapes() {
        let data = shape_data();
        let g = DepthBaseline::gridded(&data).unwrap();
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 40);
        assert_eq!(g.dim(), 1);
        // values survive the conversion
        assert_eq!(g.sample(0)[(3, 0)], data.samples()[0].channels[0][3]);
    }

    #[test]
    fn funta_baseline_detects_shape_outliers() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 3).unwrap();
        let b = DepthBaseline::new(Arc::new(Funta::new()));
        assert_eq!(b.name(), "funta");
        let auc = b.auc(&train, &test).unwrap();
        assert!(auc > 0.8, "FUNTA AUC on pure shape outliers: {auc}");
    }

    #[test]
    fn dirout_baseline_runs() {
        let data = TaxonomyConfig {
            m: 30,
            noise_std: 0.03,
        }
        .generate(OutlierType::MagnitudeIsolated, 40, 10, 5)
        .unwrap();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 1).unwrap();
        let b = DepthBaseline::new(Arc::new(DirOut::new()));
        let auc = b.auc(&train, &test).unwrap();
        assert!(auc > 0.8, "Dir.out AUC on magnitude outliers: {auc}");
        assert!(format!("{b:?}").contains("dir.out"));
    }

    #[test]
    fn score_order_matches_test_order() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 30,
            contamination: 0.1,
        };
        let (train, test) = split.split_datasets(&data, 9).unwrap();
        let b = DepthBaseline::new(Arc::new(Funta::new()));
        let s = b.score_test(&train, &test).unwrap();
        assert_eq!(s.len(), test.len());
    }

    #[test]
    fn mismatched_grids_rejected() {
        use mfod_fda::RawSample;
        let s1 = RawSample::new(vec![0.0, 0.5, 1.0], vec![vec![0.0, 1.0, 2.0]]).unwrap();
        let s2 = RawSample::new(vec![0.0, 0.6, 1.0], vec![vec![0.0, 1.0, 2.0]]).unwrap();
        let data = LabeledDataSet::new(vec![s1, s2], vec![false, true]).unwrap();
        assert!(matches!(
            DepthBaseline::gridded(&data),
            Err(MfodError::Pipeline(_))
        ));
    }
}
