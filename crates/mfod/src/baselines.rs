//! Adapters running the depth-based baselines (FUNTA, Dir.out, …) under the
//! same train/test protocol as the pipeline.
//!
//! Depth methods have no fit/predict split: a sample's score is its
//! outlyingness *relative to a reference sample*. Following the paper's
//! protocol (the baselines "take the MFD as input"), a test sample is
//! scored against the training set: we build the joint dataset
//! `train ∪ test`, score it, and report the test part. Because the training
//! composition varies with the contamination level `c`, the baselines'
//! AUC degrades as `c` grows — the robustness effect Fig. 3 measures.
//!
//! [`DepthBaseline::fit`] captures the gridded training reference once in a
//! [`FittedDepthBaseline`], which — unlike the convenience
//! [`DepthBaseline::score_test`] that re-grids the training set on every
//! call — persists like the other serving artifacts
//! ([`DepthBaselineSnapshot`], kind tag
//! [`crate::snapshot::KIND_DEPTH_BASELINE`]) so a restart restores the
//! reference instead of refitting it.

use crate::error::MfodError;
use crate::snapshot::KIND_DEPTH_BASELINE;
use crate::Result;
use mfod_datasets::LabeledDataSet;
use mfod_depth::{DepthScorerSnapshot, FunctionalOutlierScorer, GriddedDataSet};
use mfod_linalg::Matrix;
use mfod_persist::{Decode, Decoder, Encode, Encoder, PersistError, Restorable, Snapshot};
use std::path::Path;
use std::sync::Arc;

/// A depth-based baseline bound to the joint-scoring protocol.
#[derive(Clone)]
pub struct DepthBaseline {
    scorer: Arc<dyn FunctionalOutlierScorer>,
}

impl std::fmt::Debug for DepthBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepthBaseline")
            .field("scorer", &self.scorer.name())
            .finish()
    }
}

impl DepthBaseline {
    /// Wraps a functional outlyingness scorer.
    pub fn new(scorer: Arc<dyn FunctionalOutlierScorer>) -> Self {
        DepthBaseline { scorer }
    }

    /// The scorer's name (e.g. `"funta"`, `"dir.out"`).
    pub fn name(&self) -> &'static str {
        self.scorer.name()
    }

    /// Converts raw labeled samples (sharing a common measurement grid)
    /// into the gridded format of the depth crate.
    pub fn gridded(data: &LabeledDataSet) -> Result<GriddedDataSet> {
        if data.is_empty() {
            return Err(MfodError::Pipeline("empty dataset".into()));
        }
        let grid = data.samples()[0].t.clone();
        let mut mats = Vec::with_capacity(data.len());
        for (i, s) in data.samples().iter().enumerate() {
            if s.t != grid {
                return Err(MfodError::Pipeline(format!(
                    "sample {i} uses a different measurement grid; depth \
                     baselines need a common grid"
                )));
            }
            let mut m = Matrix::zeros(s.len(), s.dim());
            for (k, c) in s.channels.iter().enumerate() {
                for (j, &v) in c.iter().enumerate() {
                    m[(j, k)] = v;
                }
            }
            mats.push(m);
        }
        Ok(GriddedDataSet::new(grid, mats)?)
    }

    /// Scores the test samples against the training reference (the paper's
    /// protocol: methods are fit on the — possibly contaminated — training
    /// set) and returns test scores (higher = more outlying) in test order.
    pub fn score_test(&self, train: &LabeledDataSet, test: &LabeledDataSet) -> Result<Vec<f64>> {
        let train_g = Self::gridded(train)?;
        let test_g = Self::gridded(test)?;
        Ok(self.scorer.score_against(&train_g, &test_g)?)
    }

    /// Convenience: test AUC under the joint-scoring protocol.
    pub fn auc(&self, train: &LabeledDataSet, test: &LabeledDataSet) -> Result<f64> {
        let scores = self.score_test(train, test)?;
        Ok(mfod_eval::auc(&scores, test.labels())?)
    }

    /// Grids the training reference once and binds it to the scorer.
    ///
    /// The resulting [`FittedDepthBaseline`] scores test batches without
    /// re-converting the training set and, unlike this unfitted adapter,
    /// can be snapshotted and restored without refitting.
    pub fn fit(&self, train: &LabeledDataSet) -> Result<FittedDepthBaseline> {
        Ok(FittedDepthBaseline {
            scorer: Arc::clone(&self.scorer),
            reference: Self::gridded(train)?,
        })
    }
}

/// A depth baseline with its gridded training reference captured.
///
/// Scores are bit-identical to [`DepthBaseline::score_test`] on the same
/// training set: fitting only hoists the train-side gridding out of the
/// per-call path.
#[derive(Clone)]
pub struct FittedDepthBaseline {
    scorer: Arc<dyn FunctionalOutlierScorer>,
    reference: GriddedDataSet,
}

impl std::fmt::Debug for FittedDepthBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedDepthBaseline")
            .field("scorer", &self.scorer.name())
            .field("reference_n", &self.reference.n())
            .finish()
    }
}

impl FittedDepthBaseline {
    /// The scorer's name (e.g. `"funta"`, `"dir.out"`).
    pub fn name(&self) -> &'static str {
        self.scorer.name()
    }

    /// The gridded training reference the baseline was fitted on.
    pub fn reference(&self) -> &GriddedDataSet {
        &self.reference
    }

    /// Scores the test samples against the captured training reference
    /// (higher = more outlying), in test order.
    pub fn score_test(&self, test: &LabeledDataSet) -> Result<Vec<f64>> {
        let test_g = DepthBaseline::gridded(test)?;
        Ok(self.scorer.score_against(&self.reference, &test_g)?)
    }

    /// Convenience: test AUC against the captured reference.
    pub fn auc(&self, test: &LabeledDataSet) -> Result<f64> {
        let scores = self.score_test(test)?;
        Ok(mfod_eval::auc(&scores, test.labels())?)
    }

    /// Converts this baseline into its persistable snapshot form.
    ///
    /// Fails with a typed error when the scorer is a custom
    /// [`FunctionalOutlierScorer`] without a snapshot hook.
    pub fn snapshot(&self) -> Result<DepthBaselineSnapshot> {
        let scorer = self.scorer.snapshot().ok_or_else(|| {
            MfodError::Pipeline(format!(
                "depth scorer '{}' does not support snapshots",
                self.scorer.name()
            ))
        })?;
        Ok(DepthBaselineSnapshot {
            scorer,
            grid: self.reference.grid().to_vec(),
            samples: self.reference.samples().to_vec(),
        })
    }

    /// Snapshots this baseline and writes it to `path` atomically.
    pub fn save(&self, path: &Path) -> Result<()> {
        Ok(mfod_persist::save(&self.snapshot()?, path)?)
    }

    /// Loads a baseline saved with [`FittedDepthBaseline::save`],
    /// re-running all restore validation. The result scores bit-identically
    /// to the baseline that was saved.
    pub fn load(path: &Path) -> Result<FittedDepthBaseline> {
        mfod_persist::load::<DepthBaselineSnapshot>(path)?.restore()
    }

    /// Loads a baseline by memory-mapping the snapshot file: identical
    /// validation and bit-identical scores to
    /// [`FittedDepthBaseline::load`], with the training-reference sample
    /// matrices served zero-copy out of the mapping where alignment
    /// allows. The restored baseline owns the keep-alive handles, so the
    /// mapping lives exactly as long as its views.
    pub fn load_mapped(path: &Path) -> Result<FittedDepthBaseline> {
        mfod_persist::load_mapped::<DepthBaselineSnapshot>(path)?.restore()
    }
}

/// The on-disk form of a [`FittedDepthBaseline`]: the scorer's constructor
/// parameters plus the gridded training reference.
///
/// `mfod-depth` stays free of a persistence dependency, so the
/// [`DepthScorerSnapshot`] enum is encoded field-by-field here (a `u8`
/// variant tag followed by the constructor parameters) rather than via a
/// trait impl on the foreign type.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthBaselineSnapshot {
    /// Constructor parameters of the scorer.
    pub scorer: DepthScorerSnapshot,
    /// Common measurement grid of the training reference.
    pub grid: Vec<f64>,
    /// Training samples, one `m × dim` matrix per curve.
    pub samples: Vec<Matrix>,
}

const TAG_FUNTA: u8 = 0;
const TAG_DIROUT: u8 = 1;

impl Encode for DepthBaselineSnapshot {
    fn encode(&self, w: &mut Encoder) {
        match self.scorer {
            DepthScorerSnapshot::Funta { trim } => {
                w.put_u8(TAG_FUNTA);
                w.put_f64(trim);
            }
            DepthScorerSnapshot::DirOut { n_directions, seed } => {
                w.put_u8(TAG_DIROUT);
                w.put_usize(n_directions);
                w.put_u64(seed);
            }
        }
        self.grid.encode(w);
        self.samples.encode(w);
    }
}

impl Decode for DepthBaselineSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        let scorer = match r.take_u8()? {
            TAG_FUNTA => DepthScorerSnapshot::Funta {
                trim: r.take_f64()?,
            },
            TAG_DIROUT => DepthScorerSnapshot::DirOut {
                n_directions: r.take_usize()?,
                seed: r.take_u64()?,
            },
            tag => {
                return Err(PersistError::UnknownTag {
                    what: "depth scorer",
                    tag: u32::from(tag),
                })
            }
        };
        Ok(DepthBaselineSnapshot {
            scorer,
            grid: Vec::decode(r)?,
            samples: Vec::decode(r)?,
        })
    }
}

impl Snapshot for DepthBaselineSnapshot {
    const KIND: u32 = KIND_DEPTH_BASELINE;
    const NAME: &'static str = "depth-baseline";
}

impl DepthBaselineSnapshot {
    /// Rebuilds the live baseline. The scorer constructor re-runs its
    /// parameter validation (e.g. the rFUNTA trim range) and
    /// [`GriddedDataSet::new`] re-validates the reference (finite,
    /// strictly increasing grid; consistent sample shapes), so a
    /// tampered-but-checksummed file still fails with a typed error.
    pub fn restore(self) -> Result<FittedDepthBaseline> {
        Ok(FittedDepthBaseline {
            scorer: self.scorer.restore()?,
            reference: GriddedDataSet::new(self.grid, self.samples)?,
        })
    }
}

impl Restorable for FittedDepthBaseline {
    type Snapshot = DepthBaselineSnapshot;

    fn restore(snapshot: DepthBaselineSnapshot) -> std::result::Result<Self, String> {
        snapshot.restore().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_datasets::{OutlierType, SplitConfig, TaxonomyConfig};
    use mfod_depth::{DirOut, Funta};

    fn shape_data() -> LabeledDataSet {
        TaxonomyConfig {
            m: 40,
            noise_std: 0.03,
        }
        .generate(OutlierType::ShapePersistent, 40, 10, 11)
        .unwrap()
    }

    #[test]
    fn gridded_conversion_shapes() {
        let data = shape_data();
        let g = DepthBaseline::gridded(&data).unwrap();
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 40);
        assert_eq!(g.dim(), 1);
        // values survive the conversion
        assert_eq!(g.sample(0)[(3, 0)], data.samples()[0].channels[0][3]);
    }

    #[test]
    fn funta_baseline_detects_shape_outliers() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 3).unwrap();
        let b = DepthBaseline::new(Arc::new(Funta::new()));
        assert_eq!(b.name(), "funta");
        let auc = b.auc(&train, &test).unwrap();
        assert!(auc > 0.8, "FUNTA AUC on pure shape outliers: {auc}");
    }

    #[test]
    fn dirout_baseline_runs() {
        let data = TaxonomyConfig {
            m: 30,
            noise_std: 0.03,
        }
        .generate(OutlierType::MagnitudeIsolated, 40, 10, 5)
        .unwrap();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 1).unwrap();
        let b = DepthBaseline::new(Arc::new(DirOut::new()));
        let auc = b.auc(&train, &test).unwrap();
        assert!(auc > 0.8, "Dir.out AUC on magnitude outliers: {auc}");
        assert!(format!("{b:?}").contains("dir.out"));
    }

    #[test]
    fn score_order_matches_test_order() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 30,
            contamination: 0.1,
        };
        let (train, test) = split.split_datasets(&data, 9).unwrap();
        let b = DepthBaseline::new(Arc::new(Funta::new()));
        let s = b.score_test(&train, &test).unwrap();
        assert_eq!(s.len(), test.len());
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: score {i}");
        }
    }

    #[test]
    fn fitted_baseline_matches_unfitted_scores() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 3).unwrap();
        for scorer in [
            Arc::new(Funta::robust(0.1).unwrap()) as Arc<dyn FunctionalOutlierScorer>,
            Arc::new(DirOut::new()),
        ] {
            let b = DepthBaseline::new(Arc::clone(&scorer));
            let fitted = b.fit(&train).unwrap();
            assert_eq!(fitted.name(), b.name());
            assert_eq!(fitted.reference().n(), train.len());
            assert_bits_eq(
                &b.score_test(&train, &test).unwrap(),
                &fitted.score_test(&test).unwrap(),
                fitted.name(),
            );
            assert_eq!(
                b.auc(&train, &test).unwrap().to_bits(),
                fitted.auc(&test).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn fitted_baseline_roundtrip_scores_bit_identically() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 7).unwrap();
        for scorer in [
            Arc::new(Funta::robust(0.15).unwrap()) as Arc<dyn FunctionalOutlierScorer>,
            Arc::new(DirOut::new()),
        ] {
            let fitted = DepthBaseline::new(scorer).fit(&train).unwrap();
            let bytes = mfod_persist::to_bytes(&fitted.snapshot().unwrap());
            let snap: DepthBaselineSnapshot = mfod_persist::from_bytes(&bytes).unwrap();
            // re-encode is byte-identical
            assert_eq!(mfod_persist::to_bytes(&snap), bytes);
            let restored = snap.restore().unwrap();
            assert_eq!(restored.name(), fitted.name());
            // no refit on restore, and scores are bit-identical
            assert_bits_eq(
                &fitted.score_test(&test).unwrap(),
                &restored.score_test(&test).unwrap(),
                fitted.name(),
            );
            // a restored baseline re-snapshots to the same bytes again
            assert_eq!(mfod_persist::to_bytes(&restored.snapshot().unwrap()), bytes);
        }
    }

    #[test]
    fn fitted_baseline_file_and_registry_roundtrip() {
        use mfod_persist::ModelRegistry;
        let data = shape_data();
        let split = SplitConfig {
            train_size: 25,
            contamination: 0.08,
        };
        let (train, test) = split.split_datasets(&data, 5).unwrap();
        let fitted = DepthBaseline::new(Arc::new(Funta::new()))
            .fit(&train)
            .unwrap();
        let expected = fitted.score_test(&test).unwrap();
        let dir = std::env::temp_dir().join(format!("mfod-depth-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("funta.mfod");
        fitted.save(&path).unwrap();
        let restored = FittedDepthBaseline::load(&path).unwrap();
        assert_bits_eq(&expected, &restored.score_test(&test).unwrap(), "file");
        // loading the wrong artifact kind is typed
        assert!(matches!(
            crate::FittedPipeline::load(&path),
            Err(MfodError::Persist(
                mfod_persist::PersistError::WrongKind { .. }
            ))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
        // hot-swap through the registry restores the same scores
        let reg: ModelRegistry<FittedDepthBaseline> = ModelRegistry::new();
        reg.install_bytes(&mfod_persist::to_bytes(&fitted.snapshot().unwrap()))
            .unwrap();
        let active = reg.active().unwrap();
        assert_bits_eq(&expected, &active.score_test(&test).unwrap(), "registry");
    }

    #[test]
    fn tampered_depth_snapshots_are_rejected() {
        let data = shape_data();
        let split = SplitConfig {
            train_size: 20,
            contamination: 0.1,
        };
        let (train, _) = split.split_datasets(&data, 2).unwrap();
        let snap = DepthBaseline::new(Arc::new(Funta::new()))
            .fit(&train)
            .unwrap()
            .snapshot()
            .unwrap();
        // a trim the constructor would reject cannot be resurrected
        let mut bad = snap.clone();
        bad.scorer = mfod_depth::DepthScorerSnapshot::Funta { trim: 0.7 };
        assert!(matches!(bad.restore(), Err(MfodError::Depth(_))));
        // a non-increasing grid fails the dataset re-validation
        let mut bad = snap.clone();
        bad.grid[1] = bad.grid[0];
        assert!(matches!(bad.restore(), Err(MfodError::Depth(_))));
        // a sample with the wrong shape fails too
        let mut bad = snap.clone();
        bad.samples[0] = Matrix::zeros(2, 1);
        assert!(bad.restore().is_err());
        // unknown scorer tags and truncation/corruption are typed
        let bytes = mfod_persist::to_bytes(&snap);
        for n in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(mfod_persist::from_bytes::<DepthBaselineSnapshot>(&bytes[..n]).is_err());
        }
    }

    #[test]
    fn mismatched_grids_rejected() {
        use mfod_fda::RawSample;
        let s1 = RawSample::new(vec![0.0, 0.5, 1.0], vec![vec![0.0, 1.0, 2.0]]).unwrap();
        let s2 = RawSample::new(vec![0.0, 0.6, 1.0], vec![vec![0.0, 1.0, 2.0]]).unwrap();
        let data = LabeledDataSet::new(vec![s1, s2], vec![false, true]).unwrap();
        assert!(matches!(
            DepthBaseline::gridded(&data),
            Err(MfodError::Pipeline(_))
        ));
    }
}
