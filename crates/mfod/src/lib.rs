//! # mfod — outlier detection in multivariate functional data via geometric aggregation
//!
//! A production-quality Rust reproduction of
//! *Lejeune, Mothe, Teste — "Outlier detection in multivariate functional
//! data based on a geometric aggregation", EDBT 2020*.
//!
//! ## The method in one paragraph
//!
//! A multivariate functional datum (MFD) is `p` noisy channels observed
//! along a continuous variable `t`. The paper's pipeline (1) smooths each
//! channel with a penalized B-spline expansion so derivatives become
//! analytic, (2) views the sample as a *path* `X(t) ∈ R^p` and aggregates
//! it into a univariate functional datum through a geometric **mapping
//! function** — the curvature `κ(t)` (Eq. 5) being the flagship — and
//! (3) hands the mapped curves, evaluated on a common grid, to a standard
//! multivariate outlier detector (Isolation Forest or one-class SVM). The
//! geometry of the path encodes the correlation *between* channels, so the
//! pipeline catches mixed-type outliers that per-channel depth methods miss
//! and stays robust when the training set itself is contaminated (Fig. 3).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mfod_linalg`] | dense matrices, Cholesky/LU/QR/eigen, quadrature |
//! | [`mfod_fda`] | bases (B-spline/Fourier/polynomial), penalized smoothing, LOOCV selection |
//! | [`mfod_geometry`] | mapping functions: curvature, speed, arc length, torsion, … |
//! | [`mfod_depth`] | baselines: FUNTA, Dir.out, integrated/infimum depth, MBD |
//! | [`mfod_detect`] | detectors: iForest, ν-OCSVM (SMO), LOF, Mahalanobis |
//! | [`mfod_datasets`] | ECG simulator (ECG200 stand-in), taxonomy generators, splits |
//! | [`mfod_eval`] | AUC/ROC, k-fold CV, repeated-experiment aggregation |
//! | this crate | the end-to-end [`pipeline::GeomOutlierPipeline`], baseline adapters, ν tuning, the Sec. 5 ensemble, and the Fig. 1–3 experiment harnesses |
//!
//! ## Quickstart
//!
//! ```
//! use mfod::prelude::*;
//!
//! // Simulated ECG beats (the paper's data), augmented with the squared
//! // series so the UFD become bivariate MFD (Sec. 4.1).
//! let ecg = EcgSimulator::new(EcgConfig::default()).unwrap();
//! let data = ecg.generate(40, 8, 7).unwrap().augment_with(0, |y| y * y).unwrap();
//!
//! // Train/test split with 10% training contamination.
//! let split = SplitConfig { train_size: 24, contamination: 0.10 };
//! let (train, test) = split.split_datasets(&data, 1).unwrap();
//!
//! // Curvature mapping + Isolation Forest.
//! let pipeline = GeomOutlierPipeline::new(
//!     PipelineConfig::fast(),
//!     std::sync::Arc::new(Curvature),
//!     std::sync::Arc::new(IsolationForest::default()),
//! );
//! let fitted = pipeline.fit(train.samples()).unwrap();
//! let scores = fitted.score(test.samples()).unwrap();
//! let auc = mfod_eval::auc(&scores, test.labels()).unwrap();
//! assert!(auc > 0.6, "AUC {auc}");
//! ```

pub mod baselines;
pub mod ensemble;
pub mod error;
pub mod experiment;
pub mod pipeline;
pub mod serving;
pub mod snapshot;
pub mod tune;

pub use baselines::{DepthBaseline, DepthBaselineSnapshot, FittedDepthBaseline};
pub use ensemble::{FittedMappingEnsemble, MappingEnsemble};
pub use error::MfodError;
pub use experiment::{Fig3Config, Fig3Row};
pub use pipeline::{FeatureTransform, FittedPipeline, GeomOutlierPipeline, PipelineConfig};
pub use serving::FrozenScorer;
pub use snapshot::{EnsembleSnapshot, FrozenScorerSnapshot, PipelineSnapshot};
pub use tune::NuTuner;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, MfodError>;

// Re-export the member crates under stable names for downstream users.
pub use mfod_datasets as datasets;
pub use mfod_depth as depth;
pub use mfod_detect as detect;
pub use mfod_eval as eval;
pub use mfod_fda as fda;
pub use mfod_geometry as geometry;
pub use mfod_linalg as linalg;
pub use mfod_persist as persist;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::baselines::{DepthBaseline, DepthBaselineSnapshot, FittedDepthBaseline};
    pub use crate::ensemble::{FittedMappingEnsemble, MappingEnsemble};
    pub use crate::error::MfodError;
    pub use crate::experiment::{Fig3Config, Fig3Row};
    pub use crate::pipeline::{
        FeatureTransform, FittedPipeline, GeomOutlierPipeline, PipelineConfig,
    };
    pub use crate::serving::FrozenScorer;
    pub use crate::snapshot::{EnsembleSnapshot, FrozenScorerSnapshot, PipelineSnapshot};
    pub use crate::tune::NuTuner;
    pub use mfod_datasets::{
        EcgConfig, EcgSimulator, LabeledDataSet, OutlierType, SplitConfig, TaxonomyConfig,
    };
    pub use mfod_depth::{DirOut, FunctionalOutlierScorer, Funta, GriddedDataSet};
    pub use mfod_detect::prelude::*;
    pub use mfod_eval::{auc, roc_curve};
    pub use mfod_fda::prelude::*;
    pub use mfod_geometry::prelude::*;
}
