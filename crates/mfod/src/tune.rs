//! ν-hyper-parameter tuning for the one-class SVM by k-fold
//! *self-consistency* cross-validation.
//!
//! The paper tunes ν with 5-fold CV on the (unlabeled) training set
//! (Sec. 4.3) without stating the criterion; the standard unsupervised
//! choice — used here — exploits the ν-property: ν upper-bounds the
//! fraction of training outliers and should therefore match the fraction of
//! *held-out* points flagged as outliers. The tuner selects the candidate
//! minimizing `|held-out flagged fraction − ν|`. As the true contamination
//! `c` grows past the candidate grid, no ν fits well and OCSVM degrades —
//! the effect visible in the paper's Fig. 3 discussion.

use crate::error::MfodError;
use crate::Result;
use mfod_detect::{FittedDetector, OcSvm};
use mfod_eval::{cv::par_eval_folds, KFold};
use mfod_linalg::{par, Matrix};

/// ν tuner configuration.
#[derive(Debug, Clone)]
pub struct NuTuner {
    /// Candidate ν values (each in `(0, 1]`).
    pub candidates: Vec<f64>,
    /// Number of CV folds (the paper uses 5).
    pub folds: usize,
    /// RNG seed for the fold shuffle.
    pub seed: u64,
}

impl Default for NuTuner {
    fn default() -> Self {
        NuTuner {
            candidates: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3],
            folds: 5,
            seed: 0x7E57,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct NuSelection {
    /// The selected ν.
    pub nu: f64,
    /// Self-consistency objective `|flagged fraction − ν|` of the winner.
    pub objective: f64,
    /// `(ν, objective)` for every candidate, in candidate order.
    pub profile: Vec<(f64, f64)>,
}

impl NuTuner {
    /// Tunes ν on the training features (rows = samples) and returns the
    /// selection. The template's kernel settings are reused for every fold.
    pub fn tune(&self, template: &OcSvm, train: &Matrix) -> Result<NuSelection> {
        if self.candidates.is_empty() {
            return Err(MfodError::Pipeline("no ν candidates supplied".into()));
        }
        for &nu in &self.candidates {
            if !(0.0 < nu && nu <= 1.0) {
                return Err(MfodError::Pipeline(format!(
                    "candidate ν {nu} out of (0, 1]"
                )));
            }
        }
        let n = train.nrows();
        let kf = KFold::new(self.folds, self.seed)?;
        let folds = kf.folds(n)?;
        let cols: Vec<usize> = (0..train.ncols()).collect();
        let mut profile = Vec::with_capacity(self.candidates.len());
        for &nu in &self.candidates {
            // Folds are fitted and scored independently, so each candidate
            // evaluates its folds across the worker pool; the flagged
            // counts are summed in fold order (integer sums, so the
            // objective is identical to the sequential loop's).
            let fold_counts: Vec<(usize, usize)> =
                par_eval_folds(par::global(), &folds, |_, tr, va| {
                    let tr_m = train.submatrix(tr, &cols);
                    let cfg = OcSvm {
                        nu,
                        ..template.clone()
                    };
                    let model = cfg.fit_concrete(&tr_m)?;
                    let mut flagged = 0usize;
                    for &i in va {
                        // score > 0 ⟺ decision f(x) < 0 ⟺ flagged as outlier
                        if model.score_one(train.row(i))? > 0.0 {
                            flagged += 1;
                        }
                    }
                    Ok::<_, MfodError>((flagged, va.len()))
                })?;
            let (flagged, total) = fold_counts
                .iter()
                .fold((0usize, 0usize), |(f, t), &(cf, ct)| (f + cf, t + ct));
            let fraction = flagged as f64 / total.max(1) as f64;
            profile.push((nu, (fraction - nu).abs()));
        }
        let (nu, objective) = profile
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty candidates");
        Ok(NuSelection {
            nu,
            objective,
            profile,
        })
    }

    /// Tunes ν and fits the final model on the full training set with it.
    pub fn tune_and_fit(
        &self,
        template: &OcSvm,
        train: &Matrix,
    ) -> Result<(NuSelection, Box<dyn FittedDetector>)> {
        let selection = self.tune(template, train)?;
        let cfg = OcSvm {
            nu: selection.nu,
            ..template.clone()
        };
        let model = cfg.fit_concrete(train)?;
        Ok((selection, Box::new(model)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_detect::Detector;

    /// Ring of inliers with `frac` replaced by far-away outliers.
    fn contaminated(n: usize, frac: f64, spread: f64) -> Matrix {
        let n_out = (n as f64 * frac).round() as usize;
        let mut rows: Vec<Vec<f64>> = (0..n - n_out)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / (n - n_out) as f64;
                vec![a.cos(), a.sin()]
            })
            .collect();
        for i in 0..n_out {
            let a = i as f64 * 2.39996;
            rows.push(vec![spread * a.cos(), spread * a.sin()]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn selects_nu_near_contamination() {
        let x = contaminated(100, 0.10, 8.0);
        let tuner = NuTuner::default();
        let sel = tuner.tune(&OcSvm::default(), &x).unwrap();
        assert!(
            (0.02..=0.3).contains(&sel.nu),
            "selected ν {} outside candidate range",
            sel.nu
        );
        assert_eq!(sel.profile.len(), 6);
        assert!(
            sel.objective
                <= sel
                    .profile
                    .iter()
                    .map(|p| p.1)
                    .fold(f64::INFINITY, f64::min)
                    + 1e-12
        );
    }

    #[test]
    fn tune_and_fit_scores_outliers_high() {
        let x = contaminated(80, 0.1, 10.0);
        let tuner = NuTuner {
            folds: 4,
            ..Default::default()
        };
        let (sel, model) = tuner.tune_and_fit(&OcSvm::default(), &x).unwrap();
        assert!(sel.nu > 0.0);
        let inlier = model.score_one(&[1.0, 0.0]).unwrap();
        let outlier = model.score_one(&[12.0, 0.0]).unwrap();
        assert!(outlier > inlier);
    }

    #[test]
    fn validation_errors() {
        let x = contaminated(30, 0.1, 5.0);
        let t = NuTuner {
            candidates: vec![],
            ..Default::default()
        };
        assert!(t.tune(&OcSvm::default(), &x).is_err());
        let t = NuTuner {
            candidates: vec![1.5],
            ..Default::default()
        };
        assert!(t.tune(&OcSvm::default(), &x).is_err());
        let t = NuTuner {
            folds: 1,
            ..Default::default()
        };
        assert!(t.tune(&OcSvm::default(), &x).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = contaminated(60, 0.15, 6.0);
        let t = NuTuner::default();
        let a = t.tune(&OcSvm::default(), &x).unwrap();
        let b = t.tune(&OcSvm::default(), &x).unwrap();
        assert_eq!(a.nu, b.nu);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn template_kernel_respected() {
        // a template with a linear kernel must not fail
        let x = contaminated(40, 0.1, 5.0);
        let template = OcSvm {
            kernel: Some(mfod_detect::Kernel::Linear),
            ..Default::default()
        };
        assert_eq!(template.name(), "ocsvm");
        let sel = NuTuner {
            folds: 3,
            ..Default::default()
        }
        .tune(&template, &x)
        .unwrap();
        assert!(sel.nu > 0.0);
    }
}
