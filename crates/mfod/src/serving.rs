//! Frozen serving path: score new samples against the *training-time*
//! basis selection with cached smoothing operators.
//!
//! [`crate::FittedPipeline::score`] re-runs cross-validated basis
//! selection for every incoming sample — faithful to the paper's offline
//! protocol, but wasteful in a streaming system where (a) the selection
//! was already paid for at fit time and (b) every incoming window is
//! observed at the same timestamps. A [`FrozenScorer`] removes both costs:
//! it rebuilds the per-channel smoother that won the training-time vote
//! (see [`crate::FittedPipeline::selected_bases`]) and freezes its solve
//! operator to the fixed observation grid, making smoothing a single
//! matrix–vector product per channel.
//!
//! Trade-off: scores agree with the exact path only up to the difference
//! between per-sample re-selection and the frozen training selection (plus
//! solver round-off). Callers that need bit-for-bit parity with
//! [`crate::FittedPipeline::score`] — e.g. replaying an offline experiment
//! — should use the exact path; callers serving high-throughput traffic
//! use this one.

use crate::error::MfodError;
use crate::pipeline::FittedPipeline;
use crate::Result;
use mfod_fda::{FrozenSmoother, Grid, MultiFunctionalDatum, RawSample};
use std::sync::Arc;

/// A [`FittedPipeline`] specialized to a fixed observation grid.
#[derive(Clone)]
pub struct FrozenScorer {
    pipeline: Arc<FittedPipeline>,
    /// One frozen smoother per input channel.
    smoothers: Vec<FrozenSmoother>,
    /// Common evaluation grid of the mapped features.
    grid: Grid,
    /// Observation times the smoothers are frozen to.
    ts: Vec<f64>,
}

impl std::fmt::Debug for FrozenScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenScorer")
            .field("label", &self.pipeline.label())
            .field("channels", &self.smoothers.len())
            .field("points", &self.ts.len())
            .finish()
    }
}

impl FrozenScorer {
    /// Freezes `pipeline` to samples observed at times `ts` (which must
    /// span the training domain — the winning bases are defined on it).
    pub fn new(pipeline: Arc<FittedPipeline>, ts: &[f64]) -> Result<Self> {
        if ts.len() < 2 {
            return Err(MfodError::Pipeline(format!(
                "need at least 2 observation times, got {}",
                ts.len()
            )));
        }
        let (a, b) = pipeline.domain();
        let tol = crate::pipeline::domain_tol(a, b);
        for &t in ts {
            if t < a - tol || t > b + tol {
                return Err(MfodError::Pipeline(format!(
                    "observation time {t} outside the training domain [{a}, {b}]"
                )));
            }
        }
        let selector = &pipeline.config().selector;
        let smoothers = pipeline
            .selected_bases()
            .iter()
            .map(|&(size, lambda)| Ok(selector.smoother(a, b, size, lambda)?.freeze(ts)?))
            .collect::<Result<Vec<_>>>()?;
        if smoothers.is_empty() {
            return Err(MfodError::Pipeline(
                "pipeline recorded no channel selection".into(),
            ));
        }
        let grid = Grid::uniform(a, b, pipeline.config().grid_len)?;
        Ok(FrozenScorer {
            pipeline,
            smoothers,
            grid,
            ts: ts.to_vec(),
        })
    }

    /// The underlying fitted pipeline.
    pub fn pipeline(&self) -> &Arc<FittedPipeline> {
        &self.pipeline
    }

    /// The observation times this scorer accepts.
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }

    fn check_sample(&self, sample: &RawSample) -> Result<()> {
        if sample.dim() != self.smoothers.len() {
            return Err(MfodError::Pipeline(format!(
                "sample has {} channels, pipeline was trained on {}",
                sample.dim(),
                self.smoothers.len()
            )));
        }
        if sample.t.len() != self.ts.len() {
            return Err(MfodError::Pipeline(format!(
                "sample observed at {} times, scorer frozen to {}",
                sample.t.len(),
                self.ts.len()
            )));
        }
        let (a, b) = self.pipeline.domain();
        let tol = crate::pipeline::domain_tol(a, b);
        for (got, want) in sample.t.iter().zip(&self.ts) {
            if (got - want).abs() > tol {
                return Err(MfodError::Pipeline(format!(
                    "sample observation time {got} differs from frozen time {want}"
                )));
            }
        }
        Ok(())
    }

    /// The transformed feature vector of one sample through the frozen
    /// smoothing operators.
    fn feature_row(&self, sample: &RawSample) -> Result<Vec<f64>> {
        self.check_sample(sample)?;
        let channels = self
            .smoothers
            .iter()
            .enumerate()
            .map(|(k, s)| Ok(s.smooth(&sample.channels[k])?))
            .collect::<Result<Vec<_>>>()?;
        let datum = MultiFunctionalDatum::new(channels)?;
        let mut mapped = self.pipeline.mapping().map(&datum, &self.grid)?;
        self.pipeline
            .config()
            .transform
            .apply(&mut mapped, self.pipeline.winsorize_cap());
        Ok(mapped)
    }

    /// Scores raw samples through the frozen path; **higher = more
    /// outlying**.
    pub fn score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let features = crate::pipeline::assemble_features(samples.len(), self.grid.len(), |i| {
            self.feature_row(&samples[i])
        })?;
        Ok(self.pipeline.detector().score_batch(&features)?)
    }

    /// Parallel [`FrozenScorer::score`] (bit-for-bit identical to it).
    pub fn par_score(&self, samples: &[RawSample]) -> Result<Vec<f64>> {
        if samples.is_empty() {
            return Err(MfodError::Pipeline("no samples supplied".into()));
        }
        let rows = mfod_linalg::par::par_try_map(samples.len(), |i| self.feature_row(&samples[i]))?;
        let features = crate::pipeline::assemble_features(samples.len(), self.grid.len(), |i| {
            Ok::<_, MfodError>(&rows[i])
        })?;
        Ok(self.pipeline.detector().par_score_batch(&features)?)
    }

    /// Scores a single sample.
    pub fn score_one(&self, sample: &RawSample) -> Result<f64> {
        Ok(self.score(std::slice::from_ref(sample))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{GeomOutlierPipeline, PipelineConfig};
    use mfod_datasets::{EcgConfig, EcgSimulator};
    use mfod_detect::IsolationForest;
    use mfod_eval::auc;
    use mfod_geometry::Curvature;

    fn fitted() -> (Arc<FittedPipeline>, mfod_datasets::LabeledDataSet, Vec<f64>) {
        let data = EcgSimulator::new(EcgConfig {
            m: 40,
            ..Default::default()
        })
        .unwrap()
        .generate(24, 6, 11)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap();
        let ts = data.samples()[0].t.clone();
        let pipeline = GeomOutlierPipeline::new(
            PipelineConfig::fast(),
            Arc::new(Curvature),
            Arc::new(IsolationForest {
                n_trees: 50,
                ..Default::default()
            }),
        );
        (
            pipeline.fit(data.samples()).unwrap().into_shared(),
            data,
            ts,
        )
    }

    #[test]
    fn frozen_scores_track_exact_scores() {
        let (fitted, data, ts) = fitted();
        let frozen = FrozenScorer::new(Arc::clone(&fitted), &ts).unwrap();
        assert!(format!("{frozen:?}").contains("iforest"));
        assert_eq!(frozen.ts().len(), 40);
        let exact = fitted.score(data.samples()).unwrap();
        let fast = frozen.score(data.samples()).unwrap();
        // Same detector, same mapping, same transform — only the smoothing
        // differs (frozen training selection vs per-sample re-selection).
        // The scores must preserve the anomaly signal.
        let auc_exact = auc(&exact, data.labels()).unwrap();
        let auc_fast = auc(&fast, data.labels()).unwrap();
        assert!(auc_fast > 0.6, "frozen AUC {auc_fast} (exact {auc_exact})");
        assert!(
            (auc_exact - auc_fast).abs() < 0.25,
            "frozen path diverged: {auc_fast} vs {auc_exact}"
        );
    }

    #[test]
    fn frozen_par_score_is_bit_identical_to_frozen_score() {
        let (fitted, data, ts) = fitted();
        let frozen = FrozenScorer::new(fitted, &ts).unwrap();
        let seq = frozen.score(data.samples()).unwrap();
        let par = frozen.par_score(data.samples()).unwrap();
        assert_eq!(
            seq.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        let one = frozen.score_one(&data.samples()[5]).unwrap();
        assert_eq!(one.to_bits(), seq[5].to_bits());
    }

    #[test]
    fn frozen_rejects_mismatched_inputs() {
        let (fitted, data, ts) = fitted();
        assert!(FrozenScorer::new(Arc::clone(&fitted), &[0.0]).is_err());
        assert!(FrozenScorer::new(Arc::clone(&fitted), &[0.0, 99.0]).is_err());
        let frozen = FrozenScorer::new(fitted, &ts).unwrap();
        assert!(frozen.score(&[]).is_err());
        // wrong number of observation times
        let s = &data.samples()[0];
        let short = RawSample::new(
            s.t[..20].to_vec(),
            s.channels.iter().map(|c| c[..20].to_vec()).collect(),
        )
        .unwrap();
        assert!(frozen.score(std::slice::from_ref(&short)).is_err());
        // shifted observation times
        let shifted = RawSample::new(s.t.iter().map(|t| t + 0.01).collect(), s.channels.clone());
        if let Ok(shifted) = shifted {
            assert!(frozen.score(std::slice::from_ref(&shifted)).is_err());
        }
    }
}
