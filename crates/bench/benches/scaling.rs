//! Scaling benchmarks (ablation A6): end-to-end feature-extraction cost of
//! the geometric pipeline versus the number of samples `n`, the measurement
//! count `m` and the channel count `p`.

use criterion::{criterion_group, criterion_main, Criterion};
use mfod::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn pipeline(grid_len: usize) -> GeomOutlierPipeline {
    GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![12],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len,
            ..Default::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    )
}

fn data(n: usize, m: usize, p_extra: usize, seed: u64) -> LabeledDataSet {
    let base = EcgSimulator::new(EcgConfig {
        m,
        ..Default::default()
    })
    .unwrap()
    .generate(n, 0, seed)
    .unwrap();
    let mut out = base.augment_with(0, |y| y * y).unwrap();
    for k in 0..p_extra {
        out = out.augment_with(0, move |y| y * (k as f64 + 2.0)).unwrap();
    }
    out
}

fn bench_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("features_vs_n");
    g.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let d = data(n, 60, 0, 1);
        let p = pipeline(60);
        g.bench_function(format!("n{n}_m60_p2"), |b| {
            b.iter(|| p.features(black_box(d.samples())).unwrap())
        });
    }
    g.finish();
}

fn bench_vs_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("features_vs_m");
    g.sample_size(10);
    for &m in &[40usize, 85, 170] {
        let d = data(48, m, 0, 2);
        let p = pipeline(m);
        g.bench_function(format!("n48_m{m}_p2"), |b| {
            b.iter(|| p.features(black_box(d.samples())).unwrap())
        });
    }
    g.finish();
}

fn bench_vs_p(c: &mut Criterion) {
    let mut g = c.benchmark_group("features_vs_p");
    g.sample_size(10);
    for &extra in &[0usize, 2, 6] {
        let d = data(48, 60, extra, 3);
        let p = pipeline(60);
        g.bench_function(format!("n48_m60_p{}", 2 + extra), |b| {
            b.iter(|| p.features(black_box(d.samples())).unwrap())
        });
    }
    g.finish();
}

criterion_group!(scaling, bench_vs_n, bench_vs_m, bench_vs_p);
criterion_main!(scaling);
