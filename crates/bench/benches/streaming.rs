//! Throughput of the online scoring subsystem: windows/sec through the
//! `MicroBatcher` at batch sizes 1 / 16 / 128, in both scoring modes.
//!
//! Batch size 1 scores each window the moment it arrives (no intra-batch
//! parallelism — the sequential baseline); larger batches trade bounded
//! latency for parallel scoring across all cores. The `speedup` report at
//! the end prints the measured parallel-vs-sequential ratio explicitly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mfod::prelude::*;
use mfod_stream::{BatchConfig, MicroBatcher, ScoringMode, StreamStats};
use std::sync::Arc;
use std::time::Instant;

const N_WINDOWS: usize = 128;

fn fixture() -> (Arc<FittedPipeline>, Vec<mfod::fda::RawSample>) {
    let data = EcgSimulator::new(EcgConfig {
        m: 40,
        ..Default::default()
    })
    .unwrap()
    .generate(32, 8, 99)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let fitted = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 50,
            ..Default::default()
        }),
    )
    .fit(data.samples())
    .unwrap()
    .into_shared();
    // Recycle the dataset into a 128-window stream.
    let windows: Vec<mfod::fda::RawSample> = (0..N_WINDOWS)
        .map(|i| data.samples()[i % data.len()].clone())
        .collect();
    (fitted, windows)
}

fn drain(
    fitted: &Arc<FittedPipeline>,
    windows: &[mfod::fda::RawSample],
    batch_size: usize,
    mode: ScoringMode,
) -> usize {
    let ts = windows[0].t.clone();
    let window_ts = matches!(mode, ScoringMode::Frozen).then_some(ts.as_slice());
    let mut mb = MicroBatcher::new(
        Arc::clone(fitted),
        BatchConfig {
            batch_size,
            mode,
            ..Default::default()
        },
        window_ts,
        Arc::new(StreamStats::new()),
    )
    .unwrap();
    let mut scored = 0;
    for w in windows {
        scored += mb.submit(w.clone()).unwrap().len();
    }
    scored + mb.flush().unwrap().len()
}

fn bench_micro_batching(c: &mut Criterion) {
    let (fitted, windows) = fixture();
    let mut g = c.benchmark_group("streaming");
    g.sample_size(10)
        .throughput(Throughput::Elements(N_WINDOWS as u64));
    for &batch_size in &[1usize, 16, 128] {
        g.bench_function(format!("exact/batch_{batch_size}"), |b| {
            b.iter(|| drain(&fitted, &windows, batch_size, ScoringMode::Exact))
        });
    }
    g.bench_function("frozen/batch_128", |b| {
        b.iter(|| drain(&fitted, &windows, 128, ScoringMode::Frozen))
    });
    g.finish();
}

/// Per-call overhead of the persistent worker pool: a cheap map whose cost
/// under the previous scoped-thread implementation was dominated by the
/// per-call thread spawn and join. With long-lived workers this measures
/// only queueing and chunk bookkeeping.
fn bench_pool_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("par");
    g.sample_size(10);
    g.bench_function("par_map/4096_cheap", |b| {
        b.iter(|| mfod::linalg::par::par_map(4096, |i| (i as f64).sqrt()))
    });
    g.bench_function("par_map/64_cheap", |b| {
        b.iter(|| mfod::linalg::par::par_map(64, |i| (i as f64).sqrt()))
    });
    g.finish();
}

/// Explicit parallel-vs-sequential report: micro-batching at 128 must beat
/// the batch-size-1 sequential baseline on any multicore box.
fn report_speedup(_c: &mut Criterion) {
    let (fitted, windows) = fixture();
    let time = |batch_size: usize| {
        // warm-up, then best-of-3
        drain(&fitted, &windows, batch_size, ScoringMode::Exact);
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let scored = drain(&fitted, &windows, batch_size, ScoringMode::Exact);
                assert_eq!(scored, N_WINDOWS);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let sequential = time(1);
    let parallel = time(128);
    let ratio = sequential.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "streaming/speedup: {N_WINDOWS} windows · sequential(batch=1) {:.1} ms · \
         parallel(batch=128) {:.1} ms · speedup {ratio:.2}x on {} threads",
        sequential.as_secs_f64() * 1e3,
        parallel.as_secs_f64() * 1e3,
        mfod::linalg::par::max_threads(),
    );
}

criterion_group!(
    benches,
    bench_micro_batching,
    bench_pool_overhead,
    report_speedup
);
criterion_main!(benches);
