//! Criterion microbenchmarks of every stage of the Fig. 3 pipeline:
//! smoothing, mapping, detector fitting/scoring and the depth baselines.
//! These are the per-stage costs behind the end-to-end experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mfod::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn ecg_data() -> LabeledDataSet {
    EcgSimulator::new(EcgConfig::default())
        .unwrap()
        .generate(128, 64, 2020)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap()
}

fn bench_smoothing(c: &mut Criterion) {
    let data = ecg_data();
    let sample = data.samples()[0].clone();
    let selector = BasisSelector {
        sizes: vec![16],
        lambdas: vec![1e-2],
        ..Default::default()
    };
    c.bench_function("smooth_one_bivariate_sample_m85", |b| {
        b.iter(|| mfod::pipeline::smooth_sample(black_box(&selector), black_box(&sample)).unwrap())
    });
    let loocv = BasisSelector::default();
    c.bench_function("smooth_one_sample_loocv_ladder", |b| {
        b.iter(|| mfod::pipeline::smooth_sample(black_box(&loocv), black_box(&sample)).unwrap())
    });
}

fn bench_mapping(c: &mut Criterion) {
    let data = ecg_data();
    let selector = BasisSelector {
        sizes: vec![16],
        lambdas: vec![1e-2],
        ..Default::default()
    };
    let datum = mfod::pipeline::smooth_sample(&selector, &data.samples()[0]).unwrap();
    let grid = Grid::uniform(0.0, 1.0, 85).unwrap();
    c.bench_function("curvature_map_m85", |b| {
        b.iter(|| Curvature.map(black_box(&datum), black_box(&grid)).unwrap())
    });
    c.bench_function("curvature_eq5_map_m85", |b| {
        b.iter(|| {
            CurvatureEq5
                .map(black_box(&datum), black_box(&grid))
                .unwrap()
        })
    });
    c.bench_function("speed_map_m85", |b| {
        b.iter(|| Speed.map(black_box(&datum), black_box(&grid)).unwrap())
    });
}

fn bench_detectors_on_features(c: &mut Criterion) {
    let data = ecg_data();
    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig::default(),
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let features = pipeline.features(data.samples()).unwrap();
    c.bench_function("iforest_fit_n192_d85", |b| {
        b.iter(|| {
            IsolationForest::default()
                .fit(black_box(&features))
                .unwrap()
        })
    });
    let model = IsolationForest::default().fit(&features).unwrap();
    c.bench_function("iforest_score_n192", |b| {
        b.iter(|| model.score_batch(black_box(&features)).unwrap())
    });
    c.bench_function("ocsvm_fit_n192_d85", |b| {
        b.iter_batched(
            || features.clone(),
            |f| OcSvm::with_nu(0.1).unwrap().fit(black_box(&f)).unwrap(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_depth_baselines(c: &mut Criterion) {
    let data = ecg_data();
    let gridded = DepthBaseline::gridded(&data).unwrap();
    c.bench_function("dirout_score_n192_m85_p2", |b| {
        b.iter(|| DirOut::new().score(black_box(&gridded)).unwrap())
    });
    c.bench_function("funta_score_n192_m85_p2", |b| {
        b.iter(|| Funta::new().score(black_box(&gridded)).unwrap())
    });
}

criterion_group!(
    name = stages;
    config = Criterion::default().sample_size(10);
    targets = bench_smoothing, bench_mapping, bench_detectors_on_features, bench_depth_baselines
);
criterion_main!(stages);
