//! Worker-pool scheduling throughput: the fine-grained **work-stealing**
//! scheduler against the **contiguous** one-chunk-per-thread schedule,
//! on a balanced and on a deliberately unbalanced ("straggler")
//! workload.
//!
//! The straggler workload gives item `i` an exponentially ramped cost,
//! so the top eighth of the index range carries roughly half of the
//! total work — the shape of variable-depth isolation-forest fits, CV
//! folds of unequal cost and mixed-grid selection fan-outs. A contiguous
//! partition hands that whole expensive tail to one thread while the
//! rest idle; the stealing scheduler splits it into fine index-ordered
//! sub-chunks that idle threads pull from the shared deque.
//!
//! Outputs are asserted **bit-for-bit identical** across both schedules
//! and pool sizes 1/2/8/global before anything is timed — scheduling is
//! a wall-clock decision, never an output decision. The speedup report
//! is written to `BENCH_pool.json` (override with `MFOD_BENCH_JSON`) as
//! the baseline artifact `bench_ratchet` gates in CI.
//!
//! Wall-clock asserts need real hardware parallelism: the straggler
//! speedup contract (≥ 1.3× in full mode) is enforced only on machines
//! with at least [`MIN_HW_THREADS`] hardware threads; single-core boxes
//! still run the full parity gate.

use criterion::{criterion_group, criterion_main, is_test_mode, Criterion};
use mfod::linalg::par::{max_threads, Pool};
use std::time::{Duration, Instant};

/// Pool size the acceptance contract is stated for.
const POOL_THREADS: usize = 8;

/// Hardware-thread floor below which wall-clock speedup asserts are
/// meaningless (the schedulers time-slice one core identically).
const MIN_HW_THREADS: usize = 4;

/// Exponent range of the straggler ramp: item cost spans `2^0 .. 2^RAMP`
/// across the index range, putting ~half the total work into the top
/// eighth of the indices.
const RAMP: u32 = 8;

/// Deterministic floating-point churn whose result depends on every
/// iteration — a dropped, duplicated or reordered item changes the bits.
fn churn(seed: f64, iters: u32) -> u64 {
    let mut acc = seed;
    for k in 0..iters {
        acc = (acc * 1.000_000_3 + k as f64 * 1e-9)
            .sin()
            .mul_add(0.5, acc * 0.5);
    }
    acc.to_bits()
}

/// Balanced workload: every item costs the same.
fn balanced_item(i: usize, unit: u32) -> u64 {
    churn(i as f64 + 0.5, unit * (1 << (RAMP / 2)))
}

/// Straggler workload: exponentially ramped cost, most of the work in
/// the highest indices (the "one deep tree" / "one expensive fold"
/// shape).
fn straggler_item(i: usize, n: usize, unit: u32) -> u64 {
    let exp = (RAMP as usize * i / n.max(1)) as u32;
    churn(i as f64 - 0.25, unit * (1 << exp))
}

fn assert_bits_eq(a: &[u64], b: &[u64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{what}: item {i} diverged");
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let (n, unit) = if is_test_mode() { (48, 4) } else { (256, 48) };
    let pool = Pool::with_threads(POOL_THREADS);
    let mut g = c.benchmark_group("pool");
    if !is_test_mode() {
        g.sample_size(10);
    }
    g.throughput(criterion::Throughput::Elements(n as u64));
    g.bench_function("balanced_contiguous", |b| {
        b.iter(|| pool.map_contiguous(n, |i| balanced_item(i, unit)))
    });
    g.bench_function("balanced_stealing", |b| {
        b.iter(|| pool.map(n, |i| balanced_item(i, unit)))
    });
    g.bench_function("straggler_contiguous", |b| {
        b.iter(|| pool.map_contiguous(n, |i| straggler_item(i, n, unit)))
    });
    g.bench_function("straggler_stealing", |b| {
        b.iter(|| pool.map(n, |i| straggler_item(i, n, unit)))
    });
    g.finish();
}

/// Explicit contiguous-vs-stealing report (best of 3) with the parity
/// gate across pool sizes, the full-mode straggler-speedup contract, and
/// the `BENCH_pool.json` artifact for the CI ratchet.
fn report_speedup(_c: &mut Criterion) {
    let smoke = is_test_mode();
    let (n, unit) = if smoke { (48, 4) } else { (256, 48) };
    let hw = max_threads();
    let pool = Pool::with_threads(POOL_THREADS);

    // ---- parity before timing: both schedules, pool sizes 1/2/8 and
    // the global pool, on the workload stealing exists for -------------
    let straggler = |i: usize| straggler_item(i, n, unit);
    let balanced = |i: usize| balanced_item(i, unit);
    let reference: Vec<u64> = (0..n).map(straggler).collect();
    for threads in [1usize, 2, POOL_THREADS] {
        let p = Pool::with_threads(threads);
        assert_bits_eq(&p.map(n, straggler), &reference, "stealing");
        assert_bits_eq(&p.map_contiguous(n, straggler), &reference, "contiguous");
    }
    assert_bits_eq(
        &mfod::linalg::par::par_map(n, straggler),
        &reference,
        "global pool",
    );
    let balanced_reference: Vec<u64> = (0..n).map(balanced).collect();
    assert_bits_eq(&pool.map(n, balanced), &balanced_reference, "balanced");

    let reps = if smoke { 1 } else { 3 };
    let time = |work: &dyn Fn() -> Vec<u64>| -> Duration {
        work(); // warm-up
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                assert_eq!(work().len(), n);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let t_bal_contig = time(&|| pool.map_contiguous(n, balanced));
    let t_bal_steal = time(&|| pool.map(n, balanced));
    let t_str_contig = time(&|| pool.map_contiguous(n, straggler));
    let t_str_steal = time(&|| pool.map(n, straggler));

    let straggler_speedup = t_str_contig.as_secs_f64() / t_str_steal.as_secs_f64();
    let balanced_ratio = t_bal_contig.as_secs_f64() / t_bal_steal.as_secs_f64();
    println!(
        "pool/speedup: items={n} threads={POOL_THREADS} split={} hw={hw} · \
         straggler contiguous {:.2} ms vs stealing {:.2} ms ({straggler_speedup:.2}x) · \
         balanced contiguous {:.2} ms vs stealing {:.2} ms ({balanced_ratio:.2}x) · \
         outputs bit-identical",
        pool.split(),
        t_str_contig.as_secs_f64() * 1e3,
        t_str_steal.as_secs_f64() * 1e3,
        t_bal_contig.as_secs_f64() * 1e3,
        t_bal_steal.as_secs_f64() * 1e3,
    );

    let json = format!(
        "{{\n  \"bench\": \"pool_throughput\",\n  \"items\": {n},\n  \
         \"threads\": {POOL_THREADS},\n  \"split\": {},\n  \
         \"hw_threads\": {hw},\n  \
         \"balanced_contiguous_ms\": {:.4},\n  \"balanced_stealing_ms\": {:.4},\n  \
         \"straggler_contiguous_ms\": {:.4},\n  \"straggler_stealing_ms\": {:.4},\n  \
         \"straggler_speedup\": {:.3},\n  \"balanced_ratio\": {:.3},\n  \
         \"parity\": \"bit-identical\",\n  \"smoke\": {smoke}\n}}\n",
        pool.split(),
        t_bal_contig.as_secs_f64() * 1e3,
        t_bal_steal.as_secs_f64() * 1e3,
        t_str_contig.as_secs_f64() * 1e3,
        t_str_steal.as_secs_f64() * 1e3,
        straggler_speedup,
        balanced_ratio,
    );
    let path = std::env::var("MFOD_BENCH_JSON").unwrap_or_else(|_| "BENCH_pool.json".to_string());
    // A failed write must fail the bench: the CI smoke step writes a
    // smoke-mode report to the same default path first, and a silent
    // write failure here would hand the ratchet that stale smoke file —
    // which it (correctly) waves through, disabling the gate.
    std::fs::write(&path, json)
        .unwrap_or_else(|e| panic!("pool_throughput: could not write {path}: {e}"));
    println!("pool/speedup: baseline written to {path}");

    // The acceptance contract: on real hardware parallelism, stealing
    // must beat the contiguous schedule by ≥ 1.3× on the straggler
    // workload. Wall-clock asserts are skipped in smoke mode and on
    // machines without enough cores (the schedulers then time-slice one
    // core identically and the ratio is noise around 1.0).
    if !smoke && hw >= MIN_HW_THREADS {
        assert!(
            straggler_speedup >= 1.3,
            "work stealing must be >= 1.3x the contiguous schedule on the straggler \
             workload, measured {straggler_speedup:.2}x on {hw} hardware threads"
        );
    }
}

criterion_group!(benches, bench_schedulers, report_speedup);
criterion_main!(benches);
