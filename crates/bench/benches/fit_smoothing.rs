//! Fit-time basis-selection throughput: the grid-cached
//! [`SelectionPlan`] against the uncached per-curve ladder, sequentially
//! and fanned out over the worker pool.
//!
//! The workload is ECG-sized (m = 85 observations, the ECG200 grid) with
//! a realistic `(size, λ)` ladder. Three paths are measured on identical
//! curves:
//!
//! * **uncached** — `BasisSelector::select` per curve: re-assembles the
//!   design matrix, re-factorizes the normal equations and re-derives the
//!   hat diagonal for every (curve × candidate);
//! * **cached** — one [`BasisSelector::plan`] for the shared grid, then
//!   `SelectionPlan::select` per curve (an O(mL) pass per candidate);
//! * **cached+pool** — the cached path fanned over the persistent worker
//!   pool, as `mfod::pipeline` fit does per (sample × channel).
//!
//! Every path is asserted **bit-for-bit identical** (winner, score,
//! coefficients) before anything is timed, and the full-mode run asserts
//! the ≥ 5× cached-vs-uncached speedup contract. The speedup report is
//! also written to `BENCH_fit.json` (override the path with
//! `MFOD_BENCH_JSON`) as a baseline artifact for future perf PRs.

use criterion::{criterion_group, criterion_main, is_test_mode, Criterion};
use mfod::fda::{BasisSelector, SelectionPlan, SelectionResult};
use mfod::linalg::par::{max_threads, Pool};
use std::time::{Duration, Instant};

/// ECG200 grid length.
const M: usize = 85;

fn ladder() -> BasisSelector {
    BasisSelector {
        sizes: vec![6, 8, 10, 12],
        lambdas: vec![1e-8, 1e-4, 1e-2],
        ..BasisSelector::default()
    }
}

/// Deterministic beat-like curves on one shared grid.
fn workload(n_curves: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let ts: Vec<f64> = (0..M).map(|j| j as f64 / (M - 1) as f64).collect();
    let curves = (0..n_curves)
        .map(|i| {
            ts.iter()
                .enumerate()
                .map(|(j, &t)| {
                    let noise =
                        ((j as f64 * 12.9898 + i as f64 * 78.233).sin() * 43758.5453).fract() - 0.5;
                    (std::f64::consts::TAU * t).sin()
                        + 0.4 * (2.0 * std::f64::consts::TAU * t + i as f64 * 0.3).cos()
                        + 0.15 * noise
                })
                .collect()
        })
        .collect();
    (ts, curves)
}

fn select_uncached(sel: &BasisSelector, ts: &[f64], curves: &[Vec<f64>]) -> Vec<SelectionResult> {
    curves
        .iter()
        .map(|ys| sel.select(ts, ys).unwrap())
        .collect()
}

fn select_cached(plan: &SelectionPlan, curves: &[Vec<f64>]) -> Vec<SelectionResult> {
    curves.iter().map(|ys| plan.select(ys).unwrap()).collect()
}

fn select_cached_on(
    pool: &Pool,
    plan: &SelectionPlan,
    curves: &[Vec<f64>],
) -> Vec<SelectionResult> {
    pool.try_map(curves.len(), |i| plan.select(&curves[i]))
        .unwrap()
}

fn assert_selections_bit_equal(a: &[SelectionResult], b: &[SelectionResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.size, y.size, "{what} curve {i}: winner size");
        assert_eq!(
            x.lambda.to_bits(),
            y.lambda.to_bits(),
            "{what} curve {i}: winner lambda"
        );
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what} curve {i}: score"
        );
        for (ca, cb) in x.datum.coefs().iter().zip(y.datum.coefs()) {
            assert_eq!(ca.to_bits(), cb.to_bits(), "{what} curve {i}: coefficient");
        }
    }
}

fn bench_selection(c: &mut Criterion) {
    let n_curves = if is_test_mode() { 8 } else { 32 };
    let (ts, curves) = workload(n_curves);
    let sel = ladder();
    let plan = sel.plan(&ts).unwrap();
    let pool = Pool::with_threads(max_threads());
    let mut g = c.benchmark_group("selection");
    if !is_test_mode() {
        g.sample_size(10);
    }
    g.throughput(criterion::Throughput::Elements(n_curves as u64));
    g.bench_function("uncached", |b| {
        b.iter(|| select_uncached(&sel, &ts, &curves))
    });
    g.bench_function("cached", |b| b.iter(|| select_cached(&plan, &curves)));
    g.bench_function(format!("cached_pool_{}", pool.threads()), |b| {
        b.iter(|| select_cached_on(&pool, &plan, &curves))
    });
    g.finish();
}

/// Explicit cached-vs-uncached and sequential-vs-pool report (best of 3)
/// with the bit-parity and full-mode speedup contracts, plus the
/// `BENCH_fit.json` baseline artifact.
fn report_speedup(_c: &mut Criterion) {
    let smoke = is_test_mode();
    let n_curves = if smoke { 8 } else { 64 };
    let (ts, curves) = workload(n_curves);
    let sel = ladder();
    let plan = sel.plan(&ts).unwrap();
    let pool = Pool::with_threads(max_threads());

    // Parity before timing: all three paths bit-identical.
    let uncached = select_uncached(&sel, &ts, &curves);
    let cached = select_cached(&plan, &curves);
    let pooled = select_cached_on(&pool, &plan, &curves);
    assert_selections_bit_equal(&uncached, &cached, "cached vs uncached");
    assert_selections_bit_equal(&uncached, &pooled, "pooled vs uncached");

    let reps = if smoke { 1 } else { 3 };
    let time = |work: &dyn Fn() -> Vec<SelectionResult>| -> Duration {
        work(); // warm-up
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                assert_eq!(work().len(), n_curves);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let t_uncached = time(&|| select_uncached(&sel, &ts, &curves));
    let t_cached = time(&|| select_cached(&plan, &curves));
    let t_pool = time(&|| select_cached_on(&pool, &plan, &curves));

    let cached_speedup = t_uncached.as_secs_f64() / t_cached.as_secs_f64();
    let pool_speedup = t_cached.as_secs_f64() / t_pool.as_secs_f64();
    println!(
        "fit/speedup: selection m={M} curves={n_curves} candidates={} · \
         uncached {:.2} ms · cached {:.2} ms ({cached_speedup:.1}x) · \
         cached+pool({} threads) {:.2} ms ({pool_speedup:.2}x over cached) · \
         outputs bit-identical",
        plan.candidate_count(),
        t_uncached.as_secs_f64() * 1e3,
        t_cached.as_secs_f64() * 1e3,
        pool.threads(),
        t_pool.as_secs_f64() * 1e3,
    );

    let json = format!(
        "{{\n  \"bench\": \"fit_smoothing\",\n  \"grid_len\": {M},\n  \
         \"curves\": {n_curves},\n  \"candidates\": {},\n  \
         \"uncached_ms\": {:.4},\n  \"cached_ms\": {:.4},\n  \
         \"cached_pool_ms\": {:.4},\n  \"pool_threads\": {},\n  \
         \"cached_speedup\": {:.3},\n  \"pool_speedup\": {:.3},\n  \
         \"parity\": \"bit-identical\",\n  \"smoke\": {smoke}\n}}\n",
        plan.candidate_count(),
        t_uncached.as_secs_f64() * 1e3,
        t_cached.as_secs_f64() * 1e3,
        t_pool.as_secs_f64() * 1e3,
        pool.threads(),
        cached_speedup,
        pool_speedup,
    );
    let path = std::env::var("MFOD_BENCH_JSON").unwrap_or_else(|_| "BENCH_fit.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("fit_smoothing: could not write {path}: {e}");
    } else {
        println!("fit/speedup: baseline written to {path}");
    }

    // The selection cache removes an O(L³ + mL²) re-derivation per
    // (curve × candidate); anything under 5× would mean the plan stopped
    // caching. Timing asserts are skipped in smoke mode, where the tiny
    // workload makes wall-clock ratios meaningless.
    if !smoke {
        assert!(
            cached_speedup >= 5.0,
            "cached selection must be >= 5x the uncached path, measured {cached_speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_selection, report_speedup);
criterion_main!(benches);
