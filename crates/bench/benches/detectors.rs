//! Criterion benchmarks of the raw detectors on synthetic point clouds —
//! isolating detector cost from the functional pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mfod::detect::features::matrix_from_rows;
use mfod::linalg::Matrix;
use mfod::prelude::*;
use std::hint::black_box;

fn cloud(n: usize, d: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 31 + j * 17) as f64 * 0.618).sin() * 2.0)
                .collect()
        })
        .collect();
    matrix_from_rows(&rows).unwrap()
}

fn bench_iforest(c: &mut Criterion) {
    let mut g = c.benchmark_group("iforest");
    for &n in &[100usize, 400, 1600] {
        let x = cloud(n, 16);
        g.bench_function(format!("fit_n{n}_d16"), |b| {
            b.iter(|| IsolationForest::default().fit(black_box(&x)).unwrap())
        });
    }
    let x = cloud(400, 16);
    let model = IsolationForest::default().fit(&x).unwrap();
    g.bench_function("score_one_d16", |b| {
        b.iter(|| model.score_one(black_box(x.row(7))).unwrap())
    });
    g.finish();
}

fn bench_ocsvm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ocsvm");
    g.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let x = cloud(n, 16);
        g.bench_function(format!("fit_n{n}_d16"), |b| {
            b.iter_batched(
                || x.clone(),
                |x| OcSvm::with_nu(0.1).unwrap().fit(black_box(&x)).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_lof_mahalanobis(c: &mut Criterion) {
    let x = cloud(400, 16);
    c.bench_function("lof_fit_score_n400_d16", |b| {
        b.iter(|| {
            let m = Lof::default().fit(black_box(&x)).unwrap();
            m.score_batch(black_box(&x)).unwrap()
        })
    });
    c.bench_function("mahalanobis_fit_score_n400_d16", |b| {
        b.iter(|| {
            let m = Mahalanobis::default().fit(black_box(&x)).unwrap();
            m.score_batch(black_box(&x)).unwrap()
        })
    });
}

criterion_group!(detectors, bench_iforest, bench_ocsvm, bench_lof_mahalanobis);
criterion_main!(detectors);
