//! The zero-cost-when-disabled contract of `mfod-obs`: hot paths carry
//! their instrumentation hooks permanently, so the *disabled* recorder
//! must be unmeasurable — one relaxed atomic load and a predictable
//! branch per hook, and no `Instant` is ever constructed.
//!
//! The micro gate times a representative per-item workload twice: once
//! bare, once wrapped in the exact hook pattern the workspace uses
//! (`mfod_obs::active()` + `obs.map(|_| Instant::now())` + a histogram
//! record inside the enabled branch) with the recorder **disabled**. In
//! full mode the measured overhead must stay ≤
//! [`OVERHEAD_CEILING_PCT`]%. The enabled path is timed too — plain
//! hooks and hooks plus a per-item journal span — but only reported;
//! recording is allowed to cost something.
//!
//! Instrumentation must also never touch data: the pool parity check
//! maps the same workload through the instrumented work-stealing pool
//! with the recorder off and on and asserts **bit-identical** outputs
//! before anything is timed.
//!
//! The report is written to `BENCH_obs.json` (override with
//! `MFOD_BENCH_JSON`) for the `bench_ratchet` gate in CI.

use criterion::{criterion_group, criterion_main, is_test_mode, Criterion};
use mfod::linalg::par::{max_threads, Pool};
use mfod_obs::Recorder;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Upper bound on the disabled-path overhead, in percent (full mode).
const OVERHEAD_CEILING_PCT: f64 = 2.0;

/// Deterministic floating-point churn standing in for one unit of real
/// per-item work (a smoothing row, a tree traversal).
fn churn(seed: f64, iters: u32) -> u64 {
    let mut acc = seed;
    for k in 0..iters {
        acc = (acc * 1.000_000_3 + k as f64 * 1e-9)
            .sin()
            .mul_add(0.5, acc * 0.5);
    }
    acc.to_bits()
}

/// The workload item with the workspace's exact hook pattern around it.
#[inline]
fn hooked_item(i: usize, unit: u32) -> u64 {
    let obs = mfod_obs::active();
    let started = obs.map(|_| Instant::now());
    let out = churn(i as f64 + 0.5, unit);
    if let (Some(m), Some(t0)) = (obs, started) {
        m.pool_chunk_run.record_duration(t0.elapsed());
    }
    out
}

/// The hook pattern plus a journal span per item — the heaviest
/// instrumentation any hot path carries (pool chunks journal exactly
/// like this). Past [`mfod_obs::journal::RING_CAPACITY`] events the
/// ring is full and pushes degrade to counted drops, so this arm times
/// the blended record/drop cost a long-running process would see.
#[inline]
fn journaled_item(i: usize, unit: u32) -> u64 {
    let obs = mfod_obs::active();
    let started = obs.map(|_| {
        mfod_obs::journal::span_begin(mfod_obs::journal::NAME_POOL_CHUNK);
        Instant::now()
    });
    let out = churn(i as f64 + 0.5, unit);
    if let (Some(m), Some(t0)) = (obs, started) {
        mfod_obs::journal::span_end(mfod_obs::journal::NAME_POOL_CHUNK);
        m.pool_chunk_run.record_duration(t0.elapsed());
    }
    out
}

fn bench_hooks(c: &mut Criterion) {
    let (n, unit) = if is_test_mode() {
        (256, 8)
    } else {
        (4_096, 64)
    };
    Recorder::install(false);
    let mut g = c.benchmark_group("obs");
    if !is_test_mode() {
        g.sample_size(10);
    }
    g.bench_function("bare", |b| {
        b.iter(|| (0..n).map(|i| churn(i as f64 + 0.5, unit)).sum::<u64>())
    });
    g.bench_function("hooked_disabled", |b| {
        b.iter(|| (0..n).map(|i| hooked_item(i, unit)).sum::<u64>())
    });
    g.finish();
}

/// Explicit overhead report (min of k) with the pool parity gate, the
/// full-mode ≤2% contract and the `BENCH_obs.json` artifact for CI.
fn report_overhead(_c: &mut Criterion) {
    let smoke = is_test_mode();
    let (n, unit, reps) = if smoke {
        (2_048usize, 8u32, 1usize)
    } else {
        (65_536, 64, 5)
    };
    let hw = max_threads();

    // ---- parity before timing: the instrumented pool produces the
    // same bits whether the recorder observes it or not ----------------
    let pool = Pool::with_threads(4);
    let pn = if smoke { 512 } else { 4_096 };
    Recorder::install(false);
    let off = pool.map(pn, |i| churn(i as f64 - 0.25, unit));
    Recorder::install(true);
    let on = pool.map(pn, |i| churn(i as f64 - 0.25, unit));
    Recorder::install(false);
    assert_eq!(off, on, "instrumentation changed pool outputs");

    let time = |work: &dyn Fn() -> u64| -> Duration {
        black_box(work()); // warm-up
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                black_box(work());
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let bare = &|| (0..n).map(|i| churn(i as f64 + 0.5, unit)).sum::<u64>();
    let hooked = &|| (0..n).map(|i| hooked_item(i, unit)).sum::<u64>();
    let journaled = &|| (0..n).map(|i| journaled_item(i, unit)).sum::<u64>();

    Recorder::install(false);
    let t_bare = time(bare);
    let t_disabled = time(hooked);
    // The journal arm with the recorder disabled must degenerate to the
    // plain hook pattern (span_begin/span_end bail on the same gate), so
    // it shares the ≤2% contract implicitly; timed enabled below.
    Recorder::install(true);
    let t_enabled = time(hooked);
    mfod_obs::journal::reset();
    let t_journal = time(journaled);
    mfod_obs::journal::reset();
    Recorder::install(false);

    let overhead_pct =
        100.0 * (t_disabled.as_secs_f64() - t_bare.as_secs_f64()) / t_bare.as_secs_f64();
    let enabled_pct =
        100.0 * (t_enabled.as_secs_f64() - t_bare.as_secs_f64()) / t_bare.as_secs_f64();
    let journal_pct =
        100.0 * (t_journal.as_secs_f64() - t_bare.as_secs_f64()) / t_bare.as_secs_f64();
    println!(
        "obs/overhead: items={n} unit={unit} hw={hw} · bare {:.3} ms · hooks disabled \
         {:.3} ms ({overhead_pct:+.2}%) · hooks enabled {:.3} ms ({enabled_pct:+.2}%) · \
         journal enabled {:.3} ms ({journal_pct:+.2}%) · pool outputs bit-identical",
        t_bare.as_secs_f64() * 1e3,
        t_disabled.as_secs_f64() * 1e3,
        t_enabled.as_secs_f64() * 1e3,
        t_journal.as_secs_f64() * 1e3,
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"items\": {n},\n  \"unit\": {unit},\n  \
         \"hw_threads\": {hw},\n  \
         \"bare_ms\": {:.4},\n  \"hooked_disabled_ms\": {:.4},\n  \
         \"hooked_enabled_ms\": {:.4},\n  \"hooked_journal_ms\": {:.4},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"enabled_pct\": {enabled_pct:.3},\n  \
         \"journal_pct\": {journal_pct:.3},\n  \
         \"parity\": \"bit-identical\",\n  \"smoke\": {smoke}\n}}\n",
        t_bare.as_secs_f64() * 1e3,
        t_disabled.as_secs_f64() * 1e3,
        t_enabled.as_secs_f64() * 1e3,
        t_journal.as_secs_f64() * 1e3,
    );
    let path = std::env::var("MFOD_BENCH_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    std::fs::write(&path, json)
        .unwrap_or_else(|e| panic!("obs_overhead: could not write {path}: {e}"));
    println!("obs/overhead: report written to {path}");

    // The contract: with the recorder disabled, the hooks must cost
    // less than OVERHEAD_CEILING_PCT of the bare workload. Smoke mode
    // is a single tiny rep — correctness only, no wall-clock gate.
    if !smoke {
        assert!(
            overhead_pct <= OVERHEAD_CEILING_PCT,
            "disabled-path instrumentation overhead {overhead_pct:.2}% exceeds the \
             {OVERHEAD_CEILING_PCT}% ceiling (bare {:.3} ms vs hooked {:.3} ms)",
            t_bare.as_secs_f64() * 1e3,
            t_disabled.as_secs_f64() * 1e3,
        );
    }
}

criterion_group!(benches, bench_hooks, report_overhead);
criterion_main!(benches);
