//! Sequential-vs-pool speedups for the **fit-side** hot paths that now run
//! on the persistent worker pool: random-projection outlyingness
//! (`mfod-depth`), isolation-forest tree growing (`mfod-detect`) and
//! per-fold cross-validation (`mfod-eval`).
//!
//! The sequential baseline is an explicit 1-thread [`Pool`], which takes
//! exactly the inline code path, so the comparison isolates chunked
//! fan-out from pool bookkeeping. The `speedup` report at the end prints
//! measured ratios and asserts the parallel results are **bit-for-bit**
//! equal to the sequential ones — on a single-core container the ratios
//! hover around 1.0 by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use mfod::depth::projection::{projection_outlyingness_on, ProjectionConfig};
use mfod::detect::prelude::*;
use mfod::eval::cv::par_eval_folds;
use mfod::eval::KFold;
use mfod::linalg::par::{max_threads, Pool};
use mfod::linalg::Matrix;
use std::time::{Duration, Instant};

/// Deterministic anisotropic cloud with a sprinkling of far-away rows.
fn cloud(n: usize, p: usize) -> Matrix {
    Matrix::from_fn(n, p, |i, j| {
        let a = (i * 31 + j * 7) as f64 * 0.377;
        let base = a.sin() * (1.0 + j as f64 * 0.4) + (i as f64 * 0.01);
        if i % 23 == 0 {
            base + 8.0
        } else {
            base
        }
    })
}

fn projection_work(pool: &Pool, x: &Matrix) -> Vec<f64> {
    let cfg = ProjectionConfig {
        n_directions: 96,
        seed: 17,
    };
    projection_outlyingness_on(pool, x, &cfg).unwrap().scores
}

fn iforest_work(pool: &Pool, x: &Matrix) -> Vec<f64> {
    let forest = IsolationForest {
        n_trees: 120,
        subsample: 128,
        seed: 5,
    };
    let model = forest.fit_on(pool, x).unwrap();
    model.score_batch(x).unwrap()
}

fn cv_work(pool: &Pool, x: &Matrix) -> Vec<f64> {
    let folds = KFold::new(6, 9).unwrap().folds(x.nrows()).unwrap();
    let cols: Vec<usize> = (0..x.ncols()).collect();
    par_eval_folds(pool, &folds, |_, tr, va| {
        let model = Mahalanobis::default().fit(&x.submatrix(tr, &cols))?;
        let mut mean = 0.0;
        for &i in va {
            mean += model.score_one(x.row(i))?;
        }
        Ok::<_, mfod::detect::DetectError>(mean / va.len() as f64)
    })
    .unwrap()
}

fn bench_fit_paths(c: &mut Criterion) {
    let x = cloud(192, 6);
    let seq = Pool::with_threads(1);
    let pooled = Pool::with_threads(max_threads());
    let mut g = c.benchmark_group("fit");
    g.sample_size(10);
    g.bench_function("projection/sequential", |b| {
        b.iter(|| projection_work(&seq, &x))
    });
    g.bench_function(format!("projection/pool_{}", pooled.threads()), |b| {
        b.iter(|| projection_work(&pooled, &x))
    });
    g.bench_function("iforest/sequential", |b| b.iter(|| iforest_work(&seq, &x)));
    g.bench_function(format!("iforest/pool_{}", pooled.threads()), |b| {
        b.iter(|| iforest_work(&pooled, &x))
    });
    g.bench_function("cv_folds/sequential", |b| b.iter(|| cv_work(&seq, &x)));
    g.bench_function(format!("cv_folds/pool_{}", pooled.threads()), |b| {
        b.iter(|| cv_work(&pooled, &x))
    });
    g.finish();
}

/// A fit path under measurement: `(name, seq-or-pool runner)`.
type FitPath<'a> = (&'a str, &'a dyn Fn(&Pool, &Matrix) -> Vec<f64>);

/// Explicit sequential-vs-pool report (best of 3), with a bit-for-bit
/// parity check on every path.
fn report_speedup(_c: &mut Criterion) {
    let x = cloud(192, 6);
    let seq = Pool::with_threads(1);
    let pooled = Pool::with_threads(max_threads());
    let time = |pool: &Pool, work: &dyn Fn(&Pool, &Matrix) -> Vec<f64>| -> Duration {
        work(pool, &x); // warm-up
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let out = work(pool, &x);
                assert!(!out.is_empty());
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let paths: [FitPath; 3] = [
        ("projection-depth fit", &projection_work),
        ("iforest fit", &iforest_work),
        ("cv fold eval", &cv_work),
    ];
    for (name, work) in paths {
        let a = work(&seq, &x);
        let b = work(&pooled, &x);
        assert_eq!(a.len(), b.len(), "{name}");
        for (i, (s, p)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{name} row {i}: sequential {s} != pooled {p}"
            );
        }
        let t_seq = time(&seq, work);
        let t_pool = time(&pooled, work);
        let ratio = t_seq.as_secs_f64() / t_pool.as_secs_f64();
        println!(
            "fit/speedup: {name} · sequential {:.1} ms · pool({} threads) {:.1} ms · \
             speedup {ratio:.2}x · outputs bit-identical",
            t_seq.as_secs_f64() * 1e3,
            pooled.threads(),
            t_pool.as_secs_f64() * 1e3,
        );
    }
}

criterion_group!(benches, bench_fit_paths, report_speedup);
criterion_main!(benches);
