//! The zero-cost-when-disarmed contract of `mfod-faultline`: hot paths
//! (pool chunks, stream flushes, persist reads) carry their injection
//! points permanently, so the *disarmed* hooks must be unmeasurable —
//! one relaxed atomic load and a predictable branch per point, and no
//! lock, clock or RNG is ever touched.
//!
//! The micro gate times a representative per-item workload twice: once
//! bare, once wrapped in the exact hook pattern the workspace's pool
//! uses (`mfod_faultline::stall(POOL_STRAGGLE)` followed by
//! `should_fire(POOL_PANIC)`) with no plan armed. In full mode the
//! measured overhead must stay ≤ [`OVERHEAD_CEILING_PCT`]%. The
//! armed-but-idle path — a plan installed whose rules never fire — is
//! timed too, but only reported: consulting a live plan is allowed to
//! cost something.
//!
//! Injection must also never touch data: the pool parity check maps the
//! same workload through the instrumented work-stealing pool disarmed
//! and armed-with-never-firing-rules and asserts **bit-identical**
//! outputs before anything is timed.
//!
//! The report is written to `BENCH_faultline.json` (override with
//! `MFOD_BENCH_JSON`) for the `bench_ratchet` gate in CI.

use criterion::{criterion_group, criterion_main, is_test_mode, Criterion};
use mfod::linalg::par::{max_threads, Pool};
use mfod_faultline::{points, FaultPlan, FaultRule};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Upper bound on the disarmed-path overhead, in percent (full mode).
const OVERHEAD_CEILING_PCT: f64 = 2.0;

/// A plan that is armed but can never fire: zero-probability rules on
/// both pool points. This is the realistic "chaos rig attached, quiet"
/// state — every hit consults the plan and draws from the per-point RNG.
fn idle_plan() -> FaultPlan {
    FaultPlan::new(7)
        .rule(points::POOL_STRAGGLE, FaultRule::with_probability(0.0))
        .rule(points::POOL_PANIC, FaultRule::with_probability(0.0))
}

/// Deterministic floating-point churn standing in for one unit of real
/// per-item work (a smoothing row, a tree traversal).
fn churn(seed: f64, iters: u32) -> u64 {
    let mut acc = seed;
    for k in 0..iters {
        acc = (acc * 1.000_000_3 + k as f64 * 1e-9)
            .sin()
            .mul_add(0.5, acc * 0.5);
    }
    acc.to_bits()
}

/// The workload item behind the workspace's exact injection pattern —
/// the two hooks every pool chunk executes (`crates/linalg/src/par.rs`).
#[inline]
fn hooked_item(i: usize, unit: u32) -> u64 {
    mfod_faultline::stall(points::POOL_STRAGGLE);
    if mfod_faultline::should_fire(points::POOL_PANIC) {
        panic!("faultline_overhead: the idle plan must never fire");
    }
    churn(i as f64 + 0.5, unit)
}

fn bench_hooks(c: &mut Criterion) {
    let (n, unit) = if is_test_mode() {
        (256, 8)
    } else {
        (4_096, 64)
    };
    mfod_faultline::disarm();
    let mut g = c.benchmark_group("faultline");
    if !is_test_mode() {
        g.sample_size(10);
    }
    g.bench_function("bare", |b| {
        b.iter(|| (0..n).map(|i| churn(i as f64 + 0.5, unit)).sum::<u64>())
    });
    g.bench_function("hooked_disarmed", |b| {
        b.iter(|| (0..n).map(|i| hooked_item(i, unit)).sum::<u64>())
    });
    g.finish();
}

/// Explicit overhead report (min of k) with the pool parity gate, the
/// full-mode ≤2% contract and the `BENCH_faultline.json` artifact for
/// CI.
fn report_overhead(_c: &mut Criterion) {
    let smoke = is_test_mode();
    let (n, unit, reps) = if smoke {
        (2_048usize, 8u32, 1usize)
    } else {
        (65_536, 64, 5)
    };
    let hw = max_threads();

    // ---- parity before timing: the hooked pool produces the same bits
    // whether the chaos rig is detached or attached-but-quiet ----------
    let pool = Pool::with_threads(4);
    let pn = if smoke { 512 } else { 4_096 };
    mfod_faultline::disarm();
    let off = pool.map(pn, |i| churn(i as f64 - 0.25, unit));
    mfod_faultline::install(idle_plan());
    let on = pool.map(pn, |i| churn(i as f64 - 0.25, unit));
    mfod_faultline::disarm();
    assert_eq!(off, on, "fault hooks changed pool outputs");

    let time = |work: &dyn Fn() -> u64| -> Duration {
        black_box(work()); // warm-up
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                black_box(work());
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let bare = &|| (0..n).map(|i| churn(i as f64 + 0.5, unit)).sum::<u64>();
    let hooked = &|| (0..n).map(|i| hooked_item(i, unit)).sum::<u64>();

    mfod_faultline::disarm();
    let t_bare = time(bare);
    let t_disarmed = time(hooked);
    mfod_faultline::install(idle_plan());
    let t_armed = time(hooked);
    mfod_faultline::disarm();

    let overhead_pct =
        100.0 * (t_disarmed.as_secs_f64() - t_bare.as_secs_f64()) / t_bare.as_secs_f64();
    let armed_pct = 100.0 * (t_armed.as_secs_f64() - t_bare.as_secs_f64()) / t_bare.as_secs_f64();
    println!(
        "faultline/overhead: items={n} unit={unit} hw={hw} · bare {:.3} ms · hooks disarmed \
         {:.3} ms ({overhead_pct:+.2}%) · armed idle {:.3} ms ({armed_pct:+.2}%) · \
         pool outputs bit-identical",
        t_bare.as_secs_f64() * 1e3,
        t_disarmed.as_secs_f64() * 1e3,
        t_armed.as_secs_f64() * 1e3,
    );

    let json = format!(
        "{{\n  \"bench\": \"faultline_overhead\",\n  \"items\": {n},\n  \"unit\": {unit},\n  \
         \"hw_threads\": {hw},\n  \
         \"bare_ms\": {:.4},\n  \"hooked_disarmed_ms\": {:.4},\n  \
         \"armed_idle_ms\": {:.4},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"armed_pct\": {armed_pct:.3},\n  \
         \"parity\": \"bit-identical\",\n  \"smoke\": {smoke}\n}}\n",
        t_bare.as_secs_f64() * 1e3,
        t_disarmed.as_secs_f64() * 1e3,
        t_armed.as_secs_f64() * 1e3,
    );
    let path =
        std::env::var("MFOD_BENCH_JSON").unwrap_or_else(|_| "BENCH_faultline.json".to_string());
    std::fs::write(&path, json)
        .unwrap_or_else(|e| panic!("faultline_overhead: could not write {path}: {e}"));
    println!("faultline/overhead: report written to {path}");

    // The contract: with no plan armed, the injection points must cost
    // less than OVERHEAD_CEILING_PCT of the bare workload. Smoke mode
    // is a single tiny rep — correctness only, no wall-clock gate.
    if !smoke {
        assert!(
            overhead_pct <= OVERHEAD_CEILING_PCT,
            "disarmed-path injection overhead {overhead_pct:.2}% exceeds the \
             {OVERHEAD_CEILING_PCT}% ceiling (bare {:.3} ms vs hooked {:.3} ms)",
            t_bare.as_secs_f64() * 1e3,
            t_disarmed.as_secs_f64() * 1e3,
        );
    }
}

criterion_group!(benches, bench_hooks, report_overhead);
criterion_main!(benches);
