//! Install cost of the two snapshot decode tiers, eager vs lazy, on
//! tenant-fleet snapshots at 1×/8×/64× ECG scale.
//!
//! **Eager install** is what serving a snapshot used to cost: read the
//! file into an owned buffer, validate the container, decode every
//! section into owned matrices and digest-verify every layer. It is
//! O(file) several times over — read, CRC, copy-decode, digest.
//!
//! **Lazy install** is the zero-copy tier: `mmap` the file, validate
//! magic/version/table/CRC once ([`LazySnapshot::open_shared`]), decode
//! *nothing*. The only O(file) term left is the single CRC scan over the
//! mapped pages; section decode is deferred to first touch, which the
//! report times separately per touched tenant.
//!
//! Parity is asserted before anything is timed: the digest of every
//! touched tenant must be bit-identical across tiers (and to the
//! generator), at every scale. The report also counts **copied heap
//! bytes** per tier — on a little-endian unix target the lazy tier's
//! aligned tenant sections decode as borrowed views, so its copied-bytes
//! column stays at zero while the eager tier copies the full payload.
//!
//! The report is written to `BENCH_persist.json` (override with
//! `MFOD_BENCH_JSON`) for the `bench_ratchet` gate in CI: lazy install
//! must stay ≥5× faster than eager at 64× scale, and its growth from 1×
//! to 64× must stay sublinear in file size.

use criterion::{criterion_group, criterion_main, is_test_mode, Criterion};
use mfod_fixtures::persist::{
    decode_fleet_eager, matrix_digest, tenant_matrix, tenant_section_id, write_tenant_fleet,
    TenantFleetConfig,
};
use mfod_linalg::Matrix;
use mfod_persist::{LazySnapshot, SharedBytes};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Scale multipliers benchmarked (tenant count scales linearly).
const SCALES: [usize; 3] = [1, 8, 64];

fn fleet_file(dir: &Path, scale: usize) -> (PathBuf, TenantFleetConfig) {
    let config = TenantFleetConfig::ecg_scale(scale);
    let path = dir.join(format!("fleet-{scale}x.mfod"));
    write_tenant_fleet(&path, &config).unwrap();
    (path, config)
}

/// Eager tier: read, validate, decode and digest-verify every tenant.
/// Returns the digests so parity can be checked against the lazy tier.
fn eager_install(path: &Path) -> Vec<u64> {
    let bytes = std::fs::read(path).unwrap();
    let fleet = decode_fleet_eager(&bytes).unwrap();
    fleet.iter().map(matrix_digest).collect()
}

/// Lazy tier install: map + validate once, decode nothing.
fn lazy_install(path: &Path) -> usize {
    let shared = SharedBytes::map(path).unwrap();
    let snap = LazySnapshot::open_shared(&shared).unwrap();
    snap.section_ids().len()
}

/// Min-of-reps wall clock for `work`.
fn time<R>(reps: usize, work: impl Fn() -> R) -> Duration {
    black_box(work()); // warm-up (and page-cache priming, same for both tiers)
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(work());
            t0.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_tiers(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("mfod-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scale = if is_test_mode() { 1 } else { 8 };
    let (path, _) = fleet_file(&dir, scale);
    let mut g = c.benchmark_group("persist_load");
    if !is_test_mode() {
        g.sample_size(10);
    }
    g.bench_function("eager_install", |b| b.iter(|| eager_install(&path).len()));
    g.bench_function("lazy_install", |b| b.iter(|| lazy_install(&path)));
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Explicit eager-vs-lazy report across scales, with the parity gate and
/// the `BENCH_persist.json` artifact for CI.
fn report_tiers(_c: &mut Criterion) {
    let smoke = is_test_mode();
    let reps = if smoke { 1 } else { 5 };
    let scales: Vec<usize> = if smoke {
        vec![1, 2, 4]
    } else {
        SCALES.to_vec()
    };
    let dir = std::env::temp_dir().join(format!("mfod-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut file_bytes = Vec::new();
    let mut eager_ms = Vec::new();
    let mut lazy_ms = Vec::new();
    let mut touch_ms = Vec::new();
    let mut lazy_copied = Vec::new();
    let mut eager_payload = Vec::new();

    for &scale in &scales {
        let (path, config) = fleet_file(&dir, scale);
        let len = std::fs::metadata(&path).unwrap().len();

        // ---- parity before timing: every touched tenant digests
        // bit-identically across tiers and against the generator --------
        let eager_digests = eager_install(&path);
        assert_eq!(eager_digests.len(), config.tenants);
        let shared = SharedBytes::map(&path).unwrap();
        let snap = LazySnapshot::open_shared(&shared).unwrap();
        for i in [0, config.tenants / 2, config.tenants - 1] {
            let m: &Matrix = snap.section_value(tenant_section_id(i)).unwrap();
            assert_eq!(matrix_digest(m), eager_digests[i], "tenant {i} digest");
            assert_eq!(
                matrix_digest(&tenant_matrix(&config, i)),
                eager_digests[i],
                "tenant {i} generator digest"
            );
        }

        // copied heap bytes per tier: eager owns the whole payload,
        // lazy serves aligned sections as borrowed views
        let payload: u64 = (config.tenants * config.rows * config.cols * 8) as u64;
        let copied: u64 = [0, config.tenants / 2, config.tenants - 1]
            .iter()
            .map(|&i| {
                let m: &Matrix = snap.section_value(tenant_section_id(i)).unwrap();
                if m.is_borrowed() {
                    0
                } else {
                    (m.nrows() * m.ncols() * 8) as u64
                }
            })
            .sum();
        drop(snap);
        drop(shared);

        // ---- timings ---------------------------------------------------
        let t_eager = time(reps, || eager_install(&path).len());
        let t_lazy = time(reps, || lazy_install(&path));
        // open plus first touch of one tenant, over a fresh open each rep
        let t_touch = time(reps, || {
            let shared = SharedBytes::map(&path).unwrap();
            let snap = LazySnapshot::open_shared(&shared).unwrap();
            let m: &Matrix = snap.section_value(tenant_section_id(0)).unwrap();
            matrix_digest(m)
        });

        file_bytes.push(len);
        eager_ms.push(t_eager.as_secs_f64() * 1e3);
        lazy_ms.push(t_lazy.as_secs_f64() * 1e3);
        touch_ms.push(t_touch.as_secs_f64() * 1e3);
        lazy_copied.push(copied);
        eager_payload.push(payload);

        println!(
            "persist/load {scale:>2}x: {len:>9} B · eager {:>8.3} ms · lazy open {:>8.3} ms · \
             open+first-touch {:>8.3} ms · lazy copied {copied} B (eager {payload} B)",
            t_eager.as_secs_f64() * 1e3,
            t_lazy.as_secs_f64() * 1e3,
            t_touch.as_secs_f64() * 1e3,
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    let last = scales.len() - 1;
    let speedup_top = eager_ms[last] / lazy_ms[last].max(1e-9);
    let lazy_growth = lazy_ms[last] / lazy_ms[0].max(1e-9);
    let eager_growth = eager_ms[last] / eager_ms[0].max(1e-9);
    let size_growth = file_bytes[last] as f64 / file_bytes[0] as f64;
    println!(
        "persist/load: top-scale speedup {speedup_top:.1}x · lazy growth {lazy_growth:.1}x vs \
         eager growth {eager_growth:.1}x over a {size_growth:.0}x size range"
    );

    let json = format!(
        "{{\n  \"bench\": \"persist_load\",\n  \
         \"scales\": [{}],\n  \"file_bytes\": [{}],\n  \
         \"eager_ms\": [{}],\n  \"lazy_ms\": [{}],\n  \"open_touch_ms\": [{}],\n  \
         \"eager_payload_bytes\": [{}],\n  \"lazy_copied_bytes\": [{}],\n  \
         \"speedup_top\": {speedup_top:.3},\n  \"lazy_growth\": {lazy_growth:.3},\n  \
         \"eager_growth\": {eager_growth:.3},\n  \"size_growth\": {size_growth:.3},\n  \
         \"parity\": \"bit-identical\",\n  \"smoke\": {smoke}\n}}\n",
        scales
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        file_bytes
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        eager_ms
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        lazy_ms
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        touch_ms
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        eager_payload
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        lazy_copied
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    let path =
        std::env::var("MFOD_BENCH_JSON").unwrap_or_else(|_| "BENCH_persist.json".to_string());
    std::fs::write(&path, json)
        .unwrap_or_else(|e| panic!("persist_load: could not write {path}: {e}"));
    println!("persist/load: report written to {path}");
}

criterion_group!(benches, bench_tiers, report_tiers);
criterion_main!(benches);
