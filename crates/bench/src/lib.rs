//! Experiment binaries and Criterion benches live in this crate.
