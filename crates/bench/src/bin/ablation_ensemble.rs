//! Ablation (supplementary) — the Sec. 5 future-work ensemble: does
//! averaging mapping-diverse pipelines beat the single best member, and do
//! the per-member contributions identify the outlyingness composition?
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_ensemble [reps]
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn member(mapping: Arc<dyn MappingFunction>) -> GeomOutlierPipeline {
    GeomOutlierPipeline::new(
        PipelineConfig::default(),
        mapping,
        Arc::new(IsolationForest::default()),
    )
}

fn main() -> Result<(), MfodError> {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;

    println!("Sec. 5 ensemble ablation (c = 10%, {reps} splits)\n");
    let summary = mfod::eval::run_repeated(reps, 38, |seed| {
        let (train, test) = SplitConfig {
            train_size: 96,
            contamination: 0.10,
        }
        .split_datasets(&data, seed)?;
        let mut out = Vec::new();
        // single members
        for (mapping, name) in [
            (
                Arc::new(Curvature) as Arc<dyn MappingFunction>,
                "curvature-only",
            ),
            (Arc::new(Speed), "speed-only"),
            (Arc::new(ArcLength), "arclength-only"),
        ] {
            let p = member(mapping);
            out.push((name.to_string(), p.fit_score_auc(&train, &test)?));
        }
        // 3-member ensemble
        let ensemble = MappingEnsemble::new()
            .with_member(member(Arc::new(Curvature)))
            .with_member(member(Arc::new(Speed)))
            .with_member(member(Arc::new(ArcLength)));
        let fitted = ensemble.fit(train.samples())?;
        let scores = fitted.score(test.samples())?;
        out.push(("ensemble(3)".to_string(), auc(&scores, test.labels())?));
        Ok::<_, MfodError>(out)
    })?;
    println!("{}", summary.to_table("AUC"));

    // interpretability demo: contribution profile of the strongest outlier
    let (train, test) = SplitConfig {
        train_size: 96,
        contamination: 0.10,
    }
    .split_datasets(&data, 38)?;
    let ensemble = MappingEnsemble::new()
        .with_member(member(Arc::new(Curvature)))
        .with_member(member(Arc::new(Speed)))
        .with_member(member(Arc::new(ArcLength)));
    let fitted = ensemble.fit(train.samples())?;
    let (combined, contributions) = fitted.score_decomposed(test.samples())?;
    let top = combined
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    println!(
        "top outlier decomposition (test #{top}, true label {}):",
        if test.labels()[top] {
            "outlier"
        } else {
            "inlier"
        }
    );
    for (j, label) in fitted.member_labels().iter().enumerate() {
        println!("  {label:<22} contribution {:.2}", contributions[(top, j)]);
    }
    Ok(())
}
