//! Ablation **A2** — smoothing sensitivity: AUC of `iFor(Curvmap)` as a
//! function of the B-spline basis size and the roughness-penalty weight λ.
//! Demonstrates the derivative-oversmoothing trade-off that DESIGN.md
//! documents: prediction-optimal smoothing under-smooths derivatives.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_smoothing [reps]
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;

    println!("A2: iFor(Curvmap) AUC vs basis size and λ (c = 10%, {reps} splits)\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "L \\ λ", "1e-8", "1e-4", "1e-3", "1e-2", "1e-1"
    );
    for &size in &[6usize, 8, 12, 16, 20, 30] {
        print!("{size:<10}");
        for &lambda in &[1e-8, 1e-4, 1e-3, 1e-2, 1e-1] {
            let pipeline = GeomOutlierPipeline::new(
                PipelineConfig {
                    selector: BasisSelector {
                        sizes: vec![size],
                        lambdas: vec![lambda],
                        ..Default::default()
                    },
                    ..Default::default()
                },
                Arc::new(Curvature),
                Arc::new(IsolationForest::default()),
            );
            let summary = mfod::eval::run_repeated(reps, 38, |seed| {
                let (train, test) = SplitConfig {
                    train_size: 96,
                    contamination: 0.10,
                }
                .split_datasets(&data, seed)?;
                let auc_v = pipeline.fit_score_auc(&train, &test)?;
                Ok::<_, MfodError>(vec![("auc".to_string(), auc_v)])
            })?;
            print!(" {:>10.3}", summary.methods[0].mean);
        }
        println!();
    }

    println!("\nLOOCV ladder (paper's protocol) for reference:");
    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector::default(),
            ..Default::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let summary = mfod::eval::run_repeated(reps, 38, |seed| {
        let (train, test) = SplitConfig {
            train_size: 96,
            contamination: 0.10,
        }
        .split_datasets(&data, seed)?;
        let auc_v = pipeline.fit_score_auc(&train, &test)?;
        Ok::<_, MfodError>(vec![("auc".to_string(), auc_v)])
    })?;
    println!(
        "LOOCV over {:?}: AUC {:.3} ± {:.3}",
        BasisSelector::default().sizes,
        summary.methods[0].mean,
        summary.methods[0].std
    );
    Ok(())
}
