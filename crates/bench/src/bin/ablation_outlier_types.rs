//! Ablation **A5** — outlier-type sensitivity: each method on single-type
//! synthetic datasets (the Hubert et al. taxonomy) and on single-mode ECG
//! abnormality classes, mirroring the per-type synthetic study of Dai &
//! Genton that the paper's footnote 1 cites as justification for the
//! baselines' expected behavior.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_outlier_types
//! ```

use mfod::datasets::AbnormalMode;
use mfod::prelude::*;
use std::sync::Arc;

fn methods_header() {
    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>10}  {:>18}",
        "dataset", "iFor(Curvmap)", "OCSVM(Curvmap)", "Dir.out", "FUNTA", "dir.out degen"
    );
}

fn eval_all(data: &LabeledDataSet, label: &str) -> Result<(), MfodError> {
    let (train, test) = SplitConfig {
        train_size: data.len() / 2,
        contamination: 0.10,
    }
    .split_datasets(data, 5)?;
    let mut row = Vec::new();
    for detector in [
        Arc::new(IsolationForest::default()) as Arc<dyn Detector>,
        Arc::new(OcSvm::with_nu(0.1).map_err(MfodError::Detect)?),
    ] {
        let p = GeomOutlierPipeline::new(PipelineConfig::default(), Arc::new(Curvature), detector);
        row.push(p.fit_score_auc(&train, &test)?);
    }
    // Dir.out: one decomposition feeds both the AUC and the
    // direction-budget health column, so the health stats describe the
    // exact run behind the AUC.
    let dirout = DirOut::new();
    let train_g = DepthBaseline::gridded(&train)?;
    let test_g = DepthBaseline::gridded(&test)?;
    let decomposed = dirout.decompose_against(&train_g, &test_g)?;
    row.push(auc(&decomposed.fo, test.labels()).map_err(MfodError::from)?);
    let health = format!(
        "{} / {}",
        decomposed.degenerate_directions, decomposed.attempted_directions
    );
    row.push(DepthBaseline::new(Arc::new(Funta::new())).auc(&train, &test)?);
    println!(
        "{label:<22} {:>14.3} {:>14.3} {:>10.3} {:>10.3}  {health:>18}",
        row[0], row[1], row[2], row[3]
    );
    Ok(())
}

fn main() -> Result<(), MfodError> {
    println!("A5a: Hubert-taxonomy single-type datasets (80 inliers + 20 outliers)\n");
    methods_header();
    for ty in OutlierType::ALL {
        let data = TaxonomyConfig::default().generate(ty, 80, 20, 41)?;
        let data = if ty.dim() == 1 {
            data.augment_with(0, |y| y * y)?
        } else {
            data
        };
        eval_all(&data, ty.name())?;
    }

    println!("\nA5b: single-mode ECG abnormality classes (100 normal + 30 abnormal)\n");
    methods_header();
    for mode in AbnormalMode::ALL {
        let data = EcgSimulator::new(EcgConfig {
            modes: vec![mode],
            ..Default::default()
        })?
        .generate(100, 30, 43)?
        .augment_with(0, |y| y * y)?;
        eval_all(&data, mode.name())?;
    }
    println!(
        "\nReading guide: FUNTA only sees shape rows; Dir.out dominates\n\
         pointwise-visible rows; the curvature pipeline is the most uniform\n\
         across types — the paper's mixed-type argument (Sec. 4.3)."
    );
    Ok(())
}
