//! Regenerates the paper's **Fig. 3**: AUC (mean ± std over repeated random
//! splits) versus training contamination level for
//! `Dir.out`, `FUNTA`, `iFor(Curvmap)` and `OCSVM(Curvmap)`.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin fig3_auc_vs_contamination [reps]
//! ```
//!
//! The optional argument overrides the repetition count (paper: 50).
//! Output: the text analogue of the figure plus a CSV block for plotting.

use mfod::experiment::{format_fig3, run_fig3, Fig3Config};
use std::time::Instant;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let cfg = Fig3Config {
        repetitions: reps,
        ..Default::default()
    };
    eprintln!(
        "running Fig. 3: {} contamination levels x {} repetitions \
         (n = {}, m = {}, train = {})…",
        cfg.contamination_levels.len(),
        cfg.repetitions,
        cfg.n_normal + cfg.n_abnormal,
        cfg.ecg.m,
        cfg.train_size
    );
    let t0 = Instant::now();
    let rows = run_fig3(&cfg).expect("experiment failed");
    eprintln!("done in {:.1?}\n", t0.elapsed());

    println!("{}", format_fig3(&rows));

    // machine-readable blocks
    println!("# CSV: contamination,method,auc_mean,auc_std");
    for row in &rows {
        for m in &row.summary.methods {
            println!(
                "{:.2},{},{:.4},{:.4}",
                row.contamination, m.method, m.mean, m.std
            );
        }
    }
    println!("# CSV: contamination,dirout_degenerate,dirout_direction_budget");
    for row in &rows {
        println!(
            "{:.2},{},{}",
            row.contamination, row.dirout_degenerate, row.dirout_direction_budget
        );
    }
}
