//! Ablation **A3** — detector choice on the mapped curvature features:
//! iForest vs OCSVM vs LOF vs Mahalanobis, across contamination levels.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_detectors [reps]
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;

    // features are split-independent: compute once
    let feature_pipeline = GeomOutlierPipeline::new(
        PipelineConfig::default(),
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let features = feature_pipeline.features(data.samples())?;
    let cols: Vec<usize> = (0..features.ncols()).collect();

    let detectors: Vec<(Arc<dyn Detector>, &str)> = vec![
        (Arc::new(IsolationForest::default()), "iforest"),
        (
            Arc::new(OcSvm::with_nu(0.1).map_err(MfodError::Detect)?),
            "ocsvm(nu=0.1)",
        ),
        (Arc::new(Lof::default()), "lof(k=20)"),
        (Arc::new(Mahalanobis::default()), "mahalanobis"),
    ];

    println!("A3: detector choice on curvature features ({reps} splits)\n");
    print!("{:<16}", "c");
    for (_, name) in &detectors {
        print!("{name:>18}");
    }
    println!();
    for &c in &[0.05, 0.10, 0.15, 0.20, 0.25] {
        print!("{:<16}", format!("{:.0}%", c * 100.0));
        for (detector, _) in &detectors {
            let summary = mfod::eval::run_repeated(reps, 38, |seed| {
                let split = SplitConfig {
                    train_size: 96,
                    contamination: c,
                }
                .split(&data, seed)?;
                let labels: Vec<bool> = split
                    .test_indices
                    .iter()
                    .map(|&i| data.labels()[i])
                    .collect();
                let train_f = features.submatrix(&split.train_indices, &cols);
                let test_f = features.submatrix(&split.test_indices, &cols);
                let model = detector.fit(&train_f).map_err(MfodError::Detect)?;
                let scores = model.score_batch(&test_f).map_err(MfodError::Detect)?;
                Ok::<_, MfodError>(vec![("auc".to_string(), auc(&scores, &labels)?)])
            })?;
            print!(
                "{:>11.3} ±{:.3}",
                summary.methods[0].mean, summary.methods[0].std
            );
        }
        println!();
    }
    Ok(())
}
