//! Ablation **A4** — aggregation of pointwise depth: the integral (classic)
//! vs the infimum (the paper's suggested fix for issue (2) of Sec. 1.2),
//! plus modified band depth, per outlier class.
//!
//! Expected shape: the infimum clearly beats the integral on *isolated*
//! outliers (no masking) and roughly ties elsewhere.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_aggregation
//! ```

use mfod::depth::aggregate::{FraimanMuniz, IntegratedDepth, ModifiedBandDepth};
use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let scorers: Vec<(Arc<dyn FunctionalOutlierScorer>, &str)> = vec![
        (Arc::new(IntegratedDepth::integral()), "integral"),
        (Arc::new(IntegratedDepth::infimum()), "infimum"),
        (Arc::new(ModifiedBandDepth), "mbd"),
        (Arc::new(FraimanMuniz), "fraiman-muniz"),
        (Arc::new(Funta::new()), "funta"),
    ];
    println!("A4: depth aggregation per outlier class (AUC, n = 80 + 20)\n");
    print!("{:<22}", "outlier type");
    for (_, name) in &scorers {
        print!("{name:>14}");
    }
    // Dir.out sits outside the generic scorer list: its single
    // decomposition feeds both the AUC column (printed last) and the
    // direction-budget health block, so the degenerate stats describe the
    // exact run behind the printed AUC.
    println!("{:>14}", "dir.out");
    let dirout = DirOut::new();
    let mut dirout_health: Vec<(&str, String)> = Vec::new();
    for ty in OutlierType::ALL {
        let data = TaxonomyConfig::default().generate(ty, 80, 20, 77)?;
        let gridded = DepthBaseline::gridded(&data)?;
        let decomposed = dirout.decompose(&gridded);
        print!("{:<22}", ty.name());
        for (scorer, _) in &scorers {
            match scorer.score(&gridded) {
                Ok(scores) => print!("{:>14.3}", auc(&scores, data.labels())?),
                Err(_) => print!("{:>14}", "n/a"),
            }
        }
        match &decomposed {
            Ok(d) => println!("{:>14.3}", auc(&d.fo, data.labels())?),
            Err(_) => println!("{:>14}", "n/a"),
        }
        dirout_health.push((
            ty.name(),
            match &decomposed {
                Ok(d) => {
                    let pct = 100.0 * d.degenerate_directions as f64
                        / d.attempted_directions.max(1) as f64;
                    format!(
                        "{} / {} ({pct:.2}% degenerate)",
                        d.degenerate_directions, d.attempted_directions
                    )
                }
                Err(_) => "n/a (decomposition failed)".into(),
            },
        ));
    }
    println!("\ndir.out direction budget (degenerate / attempted):");
    for (name, health) in &dirout_health {
        println!("  {name:<20} {health}");
    }
    println!(
        "\nReading guide: 'infimum' should dominate 'integral' on the\n\
         magnitude-isolated row (masking effect, paper Sec. 1.2 issue (2)).\n\
         A large degenerate share means the dir.out supremum was estimated\n\
         from far fewer directions than configured — read its column with\n\
         suspicion."
    );
    Ok(())
}
