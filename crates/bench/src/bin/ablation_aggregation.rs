//! Ablation **A4** — aggregation of pointwise depth: the integral (classic)
//! vs the infimum (the paper's suggested fix for issue (2) of Sec. 1.2),
//! plus modified band depth, per outlier class.
//!
//! Expected shape: the infimum clearly beats the integral on *isolated*
//! outliers (no masking) and roughly ties elsewhere.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_aggregation
//! ```

use mfod::depth::aggregate::{FraimanMuniz, IntegratedDepth, ModifiedBandDepth};
use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let scorers: Vec<(Arc<dyn FunctionalOutlierScorer>, &str)> = vec![
        (Arc::new(IntegratedDepth::integral()), "integral"),
        (Arc::new(IntegratedDepth::infimum()), "infimum"),
        (Arc::new(ModifiedBandDepth), "mbd"),
        (Arc::new(FraimanMuniz), "fraiman-muniz"),
        (Arc::new(DirOut::new()), "dir.out"),
        (Arc::new(Funta::new()), "funta"),
    ];
    println!("A4: depth aggregation per outlier class (AUC, n = 80 + 20)\n");
    print!("{:<22}", "outlier type");
    for (_, name) in &scorers {
        print!("{name:>14}");
    }
    println!();
    for ty in OutlierType::ALL {
        let data = TaxonomyConfig::default().generate(ty, 80, 20, 77)?;
        let gridded = DepthBaseline::gridded(&data)?;
        print!("{:<22}", ty.name());
        for (scorer, _) in &scorers {
            match scorer.score(&gridded) {
                Ok(scores) => print!("{:>14.3}", auc(&scores, data.labels())?),
                Err(_) => print!("{:>14}", "n/a"),
            }
        }
        println!();
    }
    println!(
        "\nReading guide: 'infimum' should dominate 'integral' on the\n\
         magnitude-isolated row (masking effect, paper Sec. 1.2 issue (2))."
    );
    Ok(())
}
