//! Ablation **A1** — mapping choice: AUC of the detector pipeline under
//! every mapping function, on the ECG experiment and on each outlier-
//! taxonomy class.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_mappings [reps]
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mappings: Vec<(Arc<dyn MappingFunction>, &str)> = vec![
        (Arc::new(Curvature), "curvature"),
        (Arc::new(CurvatureEq5), "curvature-eq5"),
        (Arc::new(Speed), "speed"),
        (Arc::new(LogSpeed), "log-speed"),
        (Arc::new(Acceleration), "acceleration"),
        (Arc::new(ArcLength), "arc-length"),
        (Arc::new(SrvfNorm), "srvf-norm"),
        (Arc::new(TurningAngle), "turning-angle"),
        (Arc::new(ComponentMapping::value(0)), "channel-0 (control)"),
    ];

    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;
    println!("A1: ECG (+square channel), iForest, c = 10%, {reps} splits\n");
    println!("{:<22} {:>10} {:>8}", "mapping", "AUC mean", "std");
    for (mapping, name) in &mappings {
        let pipeline = GeomOutlierPipeline::new(
            PipelineConfig::default(),
            Arc::clone(mapping),
            Arc::new(IsolationForest::default()),
        );
        let summary = mfod::eval::run_repeated(reps, 38, |seed| {
            let (train, test) = SplitConfig {
                train_size: 96,
                contamination: 0.10,
            }
            .split_datasets(&data, seed)?;
            let auc_v = pipeline.fit_score_auc(&train, &test)?;
            Ok::<_, MfodError>(vec![((*name).to_string(), auc_v)])
        })?;
        let m = &summary.methods[0];
        println!("{name:<22} {:>10.3} {:>8.3}", m.mean, m.std);
    }

    println!("\nper-taxonomy-class resubstitution AUC (curvature vs speed):");
    println!("{:<22} {:>10} {:>10}", "outlier type", "curvature", "speed");
    for ty in OutlierType::ALL {
        let d = TaxonomyConfig::default().generate(ty, 80, 20, 99)?;
        let d = if ty.dim() == 1 {
            d.augment_with(0, |y| y * y)?
        } else {
            d
        };
        let mut row = Vec::new();
        for mapping in [
            Arc::new(Curvature) as Arc<dyn MappingFunction>,
            Arc::new(Speed),
        ] {
            let p = GeomOutlierPipeline::new(
                PipelineConfig::default(),
                mapping,
                Arc::new(IsolationForest::default()),
            );
            let fitted = p.fit(d.samples())?;
            let scores = fitted.score(d.samples())?;
            row.push(auc(&scores, d.labels())?);
        }
        println!("{:<22} {:>10.3} {:>10.3}", ty.name(), row[0], row[1]);
    }
    Ok(())
}
