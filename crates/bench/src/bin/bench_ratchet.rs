//! Fit-throughput ratchet: compares a freshly emitted `BENCH_fit.json`
//! against the checked-in baseline and fails on a regression.
//!
//! `benches/fit_smoothing.rs` writes a flat JSON report with per-run
//! wall-clock numbers for the cached (production fit path) and uncached
//! selection loops. Raw wall-clock is not comparable across machines
//! (the checked-in baseline and a CI runner are different hardware), so
//! the enforced metric is **hardware-normalized**: the cached-vs-uncached
//! speedup measured within one run, where the uncached loop acts as the
//! machine's own denominator. The gates, in order:
//!
//! 1. the bit-parity field must report `bit-identical`;
//! 2. the cached speedup must not drop more than the tolerance below the
//!    baseline's speedup (the fit-throughput ratchet);
//! 3. in full mode, the absolute ≥5× cache contract must hold.
//!
//! Absolute curves-per-millisecond numbers are always printed for both
//! files and enforced only when `MFOD_RATCHET_ABS=1` (same-machine
//! comparisons, e.g. a perf investigation against yesterday's artifact).
//!
//! Usage: `bench_ratchet <baseline.json> <current.json>`
//!
//! Environment:
//! * `MFOD_RATCHET_TOL` — allowed fractional drop (default `0.20`,
//!   i.e. fail on >20% regression);
//! * `MFOD_RATCHET_ABS` — set to `1` to also enforce the absolute
//!   throughput floor.
//!
//! Refresh `crates/bench/baselines/BENCH_fit.baseline.json` from the CI
//! `BENCH_fit` artifact after intentional perf changes so the ratchet
//! keeps teeth.

use std::process::ExitCode;

/// Minimal extractor for the flat JSON `fit_smoothing` emits: finds
/// `"key":` and parses the literal after it. Good enough for a file this
//  crate writes itself; anything unparseable fails the ratchet loudly.
fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim())
}

fn number(json: &str, key: &str, path: &str) -> Result<f64, String> {
    field(json, key)
        .and_then(|v| v.trim_matches('"').parse::<f64>().ok())
        .ok_or_else(|| format!("{path}: missing or non-numeric field \"{key}\""))
}

fn text(json: &str, key: &str, path: &str) -> Result<String, String> {
    field(json, key)
        .map(|v| v.trim_matches('"').to_string())
        .ok_or_else(|| format!("{path}: missing field \"{key}\""))
}

struct Report {
    curves: f64,
    cached_ms: f64,
    uncached_ms: f64,
    cached_speedup: f64,
    parity: String,
    smoke: String,
}

impl Report {
    fn load(path: &str) -> Result<Self, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Report {
            curves: number(&json, "curves", path)?,
            cached_ms: number(&json, "cached_ms", path)?,
            uncached_ms: number(&json, "uncached_ms", path)?,
            cached_speedup: number(&json, "cached_speedup", path)?,
            parity: text(&json, "parity", path)?,
            smoke: text(&json, "smoke", path)?,
        })
    }

    /// Curves smoothed per millisecond through the cached fit path.
    fn cached_throughput(&self) -> f64 {
        self.curves / self.cached_ms.max(1e-9)
    }

    fn uncached_throughput(&self) -> f64 {
        self.curves / self.uncached_ms.max(1e-9)
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = args.as_slice() else {
        return Err(format!(
            "usage: {} <baseline.json> <current.json>",
            args.first().map(String::as_str).unwrap_or("bench_ratchet")
        ));
    };
    let tolerance = std::env::var("MFOD_RATCHET_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.20);

    let baseline = Report::load(baseline_path)?;
    let current = Report::load(current_path)?;

    if current.parity != "bit-identical" {
        return Err(format!(
            "{current_path}: parity gate reports '{}', expected 'bit-identical'",
            current.parity
        ));
    }

    // Primary, hardware-normalized gate: the cached-vs-uncached speedup.
    let speedup_floor = baseline.cached_speedup * (1.0 - tolerance);
    println!(
        "ratchet: cached speedup {:.1}x vs baseline {:.1}x (floor {:.1}x at {:.0}% \
         tolerance; baseline smoke={}, current smoke={})",
        current.cached_speedup,
        baseline.cached_speedup,
        speedup_floor,
        tolerance * 100.0,
        baseline.smoke,
        current.smoke,
    );
    let base = baseline.cached_throughput();
    let now = current.cached_throughput();
    println!(
        "ratchet: cached {now:.2} vs baseline {base:.2} curves/ms; uncached {:.2} vs \
         baseline {:.2} curves/ms (absolute numbers informational unless \
         MFOD_RATCHET_ABS=1 — different machines tick differently)",
        current.uncached_throughput(),
        baseline.uncached_throughput(),
    );
    if current.cached_speedup < speedup_floor {
        return Err(format!(
            "fit-throughput regression: cached speedup {:.2}x is more than {:.0}% below \
             the baseline {:.2}x",
            current.cached_speedup,
            tolerance * 100.0,
            baseline.cached_speedup
        ));
    }
    // The cache contract itself: losing the ≥5x cached-vs-uncached edge
    // means the plan stopped caching, whatever the absolute clock says.
    if current.smoke != "true" && current.cached_speedup < 5.0 {
        return Err(format!(
            "cached selection speedup collapsed to {:.2}x (contract: >= 5x)",
            current.cached_speedup
        ));
    }
    let enforce_abs = std::env::var("MFOD_RATCHET_ABS").is_ok_and(|v| v == "1");
    if enforce_abs && now < base * (1.0 - tolerance) {
        return Err(format!(
            "absolute fit-throughput regression: {now:.2} curves/ms is more than \
             {:.0}% below the baseline {base:.2}",
            tolerance * 100.0
        ));
    }
    println!("ratchet: OK");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_ratchet: {msg}");
            ExitCode::FAILURE
        }
    }
}
