//! Perf ratchet: compares a freshly emitted bench JSON against the
//! checked-in baseline and fails on a regression. Dispatches on the
//! report's `"bench"` field:
//!
//! * **`fit_smoothing`** (`BENCH_fit.json`) — the grid-cached selection
//!   engine. Raw wall-clock is not comparable across machines (the
//!   checked-in baseline and a CI runner are different hardware), so the
//!   enforced metric is **hardware-normalized**: the cached-vs-uncached
//!   speedup measured within one run, where the uncached loop acts as
//!   the machine's own denominator. Gates, in order: the bit-parity
//!   field; the cached speedup within tolerance of the baseline's; the
//!   absolute ≥5× cache contract in full mode. Absolute
//!   curves-per-millisecond numbers are printed for both files and
//!   enforced only when `MFOD_RATCHET_ABS=1`.
//!
//! * **`pool_throughput`** (`BENCH_pool.json`) — the work-stealing
//!   scheduler. Gates: the bit-parity field always; on machines with
//!   real parallelism (`hw_threads ≥ 4`) and in full mode, the
//!   straggler-workload speedup of stealing over the contiguous
//!   schedule must hold the absolute ≥1.3× contract *and* stay within
//!   tolerance of the baseline's measured speedup. A baseline recorded
//!   on a single-core box contributes no relative floor (its ratio is
//!   noise around 1.0) — the absolute contract still has teeth there.
//!
//! * **`obs_overhead`** (`BENCH_obs.json`) — the `mfod-obs`
//!   zero-cost-when-disabled contract. Gates: the bit-parity field
//!   always; in full mode the measured disabled-hook overhead must stay
//!   ≤2%. The ceiling is absolute — a disabled hook costs the same
//!   atomic load on every machine — so no hardware-relative floor
//!   applies.
//!
//! * **`faultline_overhead`** (`BENCH_faultline.json`) — the
//!   `mfod-faultline` zero-cost-when-disarmed contract. Gates: the
//!   bit-parity field always; in full mode the measured disarmed-hook
//!   overhead must stay ≤2%. Like `obs_overhead` the ceiling is
//!   absolute — a disarmed injection point costs the same relaxed load
//!   on every machine.
//!
//! * **`persist_load`** (`BENCH_persist.json`) — the two-tier snapshot
//!   decode. Gates: the bit-parity field always; the zero-copy gate
//!   always (the lazy tier must serve aligned sections as borrowed
//!   views, copying zero payload bytes — deterministic, so smoke mode
//!   enforces it too); in full mode, lazy install must beat eager ≥5×
//!   at the largest scale (hardware-normalized: both tiers run on the
//!   same machine in the same process) and stay within tolerance of the
//!   baseline's speedup, and lazy install time must grow sublinearly in
//!   file size (growth ratio ≤ 0.75 of the size ratio).
//!
//! Usage: `bench_ratchet <baseline.json> <current.json>`
//!
//! Environment:
//! * `MFOD_RATCHET_TOL` — allowed fractional drop (default `0.20`,
//!   i.e. fail on >20% regression);
//! * `MFOD_RATCHET_ABS` — set to `1` to also enforce the absolute
//!   fit-throughput floor (same-machine comparisons).
//!
//! Refresh `crates/bench/baselines/*.baseline.json` from the CI
//! artifacts after intentional perf changes so the ratchet keeps teeth.

use std::process::ExitCode;

/// Minimal extractor for the flat JSON the benches emit: finds
/// `"key":` and parses the literal after it. Good enough for files this
/// crate writes itself; anything unparseable fails the ratchet loudly.
fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim())
}

fn number(json: &str, key: &str, path: &str) -> Result<f64, String> {
    field(json, key)
        .and_then(|v| v.trim_matches('"').parse::<f64>().ok())
        .ok_or_else(|| format!("{path}: missing or non-numeric field \"{key}\""))
}

fn text(json: &str, key: &str, path: &str) -> Result<String, String> {
    field(json, key)
        .map(|v| v.trim_matches('"').to_string())
        .ok_or_else(|| format!("{path}: missing field \"{key}\""))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn tolerance() -> f64 {
    std::env::var("MFOD_RATCHET_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.20)
}

fn check_parity(json: &str, path: &str) -> Result<(), String> {
    let parity = text(json, "parity", path)?;
    if parity != "bit-identical" {
        return Err(format!(
            "{path}: parity gate reports '{parity}', expected 'bit-identical'"
        ));
    }
    Ok(())
}

// ---- fit_smoothing -----------------------------------------------------

struct FitReport {
    curves: f64,
    cached_ms: f64,
    uncached_ms: f64,
    cached_speedup: f64,
    smoke: String,
}

impl FitReport {
    fn load(json: &str, path: &str) -> Result<Self, String> {
        Ok(FitReport {
            curves: number(json, "curves", path)?,
            cached_ms: number(json, "cached_ms", path)?,
            uncached_ms: number(json, "uncached_ms", path)?,
            cached_speedup: number(json, "cached_speedup", path)?,
            smoke: text(json, "smoke", path)?,
        })
    }

    /// Curves smoothed per millisecond through the cached fit path.
    fn cached_throughput(&self) -> f64 {
        self.curves / self.cached_ms.max(1e-9)
    }

    fn uncached_throughput(&self) -> f64 {
        self.curves / self.uncached_ms.max(1e-9)
    }
}

fn ratchet_fit(
    baseline_json: &str,
    baseline_path: &str,
    current_json: &str,
    current_path: &str,
) -> Result<(), String> {
    let tolerance = tolerance();
    let baseline = FitReport::load(baseline_json, baseline_path)?;
    let current = FitReport::load(current_json, current_path)?;
    check_parity(current_json, current_path)?;

    // Primary, hardware-normalized gate: the cached-vs-uncached speedup.
    let speedup_floor = baseline.cached_speedup * (1.0 - tolerance);
    println!(
        "ratchet[fit]: cached speedup {:.1}x vs baseline {:.1}x (floor {:.1}x at {:.0}% \
         tolerance; baseline smoke={}, current smoke={})",
        current.cached_speedup,
        baseline.cached_speedup,
        speedup_floor,
        tolerance * 100.0,
        baseline.smoke,
        current.smoke,
    );
    let base = baseline.cached_throughput();
    let now = current.cached_throughput();
    println!(
        "ratchet[fit]: cached {now:.2} vs baseline {base:.2} curves/ms; uncached {:.2} vs \
         baseline {:.2} curves/ms (absolute numbers informational unless \
         MFOD_RATCHET_ABS=1 — different machines tick differently)",
        current.uncached_throughput(),
        baseline.uncached_throughput(),
    );
    if current.cached_speedup < speedup_floor {
        return Err(format!(
            "fit-throughput regression: cached speedup {:.2}x is more than {:.0}% below \
             the baseline {:.2}x",
            current.cached_speedup,
            tolerance * 100.0,
            baseline.cached_speedup
        ));
    }
    // The cache contract itself: losing the ≥5x cached-vs-uncached edge
    // means the plan stopped caching, whatever the absolute clock says.
    if current.smoke != "true" && current.cached_speedup < 5.0 {
        return Err(format!(
            "cached selection speedup collapsed to {:.2}x (contract: >= 5x)",
            current.cached_speedup
        ));
    }
    let enforce_abs = std::env::var("MFOD_RATCHET_ABS").is_ok_and(|v| v == "1");
    if enforce_abs && now < base * (1.0 - tolerance) {
        return Err(format!(
            "absolute fit-throughput regression: {now:.2} curves/ms is more than \
             {:.0}% below the baseline {base:.2}",
            tolerance * 100.0
        ));
    }
    Ok(())
}

// ---- pool_throughput ---------------------------------------------------

/// Hardware-thread floor below which a measured scheduler ratio is noise
/// (must match `benches/pool_throughput.rs`).
const POOL_MIN_HW_THREADS: f64 = 4.0;

/// The absolute straggler contract of the stealing scheduler.
const POOL_SPEEDUP_FLOOR: f64 = 1.3;

fn ratchet_pool(
    baseline_json: &str,
    baseline_path: &str,
    current_json: &str,
    current_path: &str,
) -> Result<(), String> {
    let tolerance = tolerance();
    check_parity(current_json, current_path)?;
    let current_speedup = number(current_json, "straggler_speedup", current_path)?;
    let current_hw = number(current_json, "hw_threads", current_path)?;
    let current_smoke = text(current_json, "smoke", current_path)?;
    let base_speedup = number(baseline_json, "straggler_speedup", baseline_path)?;
    let base_hw = number(baseline_json, "hw_threads", baseline_path)?;
    let base_smoke = text(baseline_json, "smoke", baseline_path)?;

    // A single-core baseline measured ~1.0x by construction, and a
    // smoke-mode baseline's ratio is single-rep noise on a tiny
    // workload; only a full-mode baseline with real parallelism
    // contributes a relative floor.
    let relative_floor = if base_hw >= POOL_MIN_HW_THREADS && base_smoke != "true" {
        base_speedup * (1.0 - tolerance)
    } else {
        0.0
    };
    let floor = relative_floor.max(POOL_SPEEDUP_FLOOR);
    println!(
        "ratchet[pool]: straggler speedup {current_speedup:.2}x on {current_hw:.0} hw \
         threads vs baseline {base_speedup:.2}x on {base_hw:.0} (enforced floor \
         {floor:.2}x; current smoke={current_smoke})",
    );
    if current_smoke == "true" {
        println!("ratchet[pool]: smoke-mode report — wall-clock gates skipped");
        return Ok(());
    }
    if current_hw < POOL_MIN_HW_THREADS {
        println!(
            "ratchet[pool]: {current_hw:.0} hardware thread(s) — schedulers time-slice \
             one core identically, wall-clock gates skipped (parity gate passed)"
        );
        return Ok(());
    }
    if current_speedup < floor {
        return Err(format!(
            "pool-scheduling regression: straggler speedup {current_speedup:.2}x is below \
             the enforced floor {floor:.2}x (absolute contract {POOL_SPEEDUP_FLOOR}x, \
             baseline {base_speedup:.2}x at {:.0}% tolerance)",
            tolerance * 100.0
        ));
    }
    Ok(())
}

// ---- obs_overhead ------------------------------------------------------

/// The absolute disabled-path overhead contract, in percent (must match
/// `benches/obs_overhead.rs`).
const OBS_OVERHEAD_CEILING_PCT: f64 = 2.0;

fn ratchet_obs(
    baseline_json: &str,
    baseline_path: &str,
    current_json: &str,
    current_path: &str,
) -> Result<(), String> {
    check_parity(current_json, current_path)?;
    let current_pct = number(current_json, "overhead_pct", current_path)?;
    let current_smoke = text(current_json, "smoke", current_path)?;
    let base_pct = number(baseline_json, "overhead_pct", baseline_path)?;
    let base_smoke = text(baseline_json, "smoke", baseline_path)?;
    println!(
        "ratchet[obs]: disabled-path hook overhead {current_pct:+.2}% vs baseline \
         {base_pct:+.2}% (ceiling {OBS_OVERHEAD_CEILING_PCT}%; baseline smoke={base_smoke}, \
         current smoke={current_smoke})"
    );
    // Enabled-recorder arms are informational only — the contract gates
    // the disabled path; recording (and journalling) may cost something.
    if let (Ok(enabled_pct), Ok(journal_pct)) = (
        number(current_json, "enabled_pct", current_path),
        number(current_json, "journal_pct", current_path),
    ) {
        println!(
            "ratchet[obs]: enabled-path overhead {enabled_pct:+.2}% · with per-item journal \
             span {journal_pct:+.2}% (informational, not gated)"
        );
    }
    if current_smoke == "true" {
        println!("ratchet[obs]: smoke-mode report — wall-clock gate skipped (parity gate passed)");
        return Ok(());
    }
    // The overhead contract is absolute — a disabled hook costs the same
    // atomic load on every machine, so no hardware-relative floor is
    // needed. Negative values are timing noise in the caller's favour.
    if current_pct > OBS_OVERHEAD_CEILING_PCT {
        return Err(format!(
            "observability regression: disabled-path hook overhead {current_pct:.2}% \
             exceeds the {OBS_OVERHEAD_CEILING_PCT}% ceiling"
        ));
    }
    Ok(())
}

// ---- faultline_overhead ------------------------------------------------

/// The absolute disarmed-path overhead contract, in percent (must match
/// `benches/faultline_overhead.rs`).
const FAULTLINE_OVERHEAD_CEILING_PCT: f64 = 2.0;

fn ratchet_faultline(
    baseline_json: &str,
    baseline_path: &str,
    current_json: &str,
    current_path: &str,
) -> Result<(), String> {
    check_parity(current_json, current_path)?;
    let current_pct = number(current_json, "overhead_pct", current_path)?;
    let current_smoke = text(current_json, "smoke", current_path)?;
    let base_pct = number(baseline_json, "overhead_pct", baseline_path)?;
    let base_smoke = text(baseline_json, "smoke", baseline_path)?;
    println!(
        "ratchet[faultline]: disarmed-path injection overhead {current_pct:+.2}% vs baseline \
         {base_pct:+.2}% (ceiling {FAULTLINE_OVERHEAD_CEILING_PCT}%; baseline \
         smoke={base_smoke}, current smoke={current_smoke})"
    );
    if current_smoke == "true" {
        println!(
            "ratchet[faultline]: smoke-mode report — wall-clock gate skipped (parity gate passed)"
        );
        return Ok(());
    }
    // Like the obs contract, the ceiling is absolute — a disarmed
    // injection point costs the same atomic load on every machine.
    // Negative values are timing noise in the caller's favour.
    if current_pct > FAULTLINE_OVERHEAD_CEILING_PCT {
        return Err(format!(
            "fault-injection regression: disarmed-path hook overhead {current_pct:.2}% \
             exceeds the {FAULTLINE_OVERHEAD_CEILING_PCT}% ceiling"
        ));
    }
    Ok(())
}

// ---- persist_load ------------------------------------------------------

/// The absolute lazy-vs-eager install contract at the largest scale
/// (must match `benches/persist_load.rs`).
const PERSIST_SPEEDUP_FLOOR: f64 = 5.0;

/// Lazy install time may grow at most this fraction of the file-size
/// growth across the scale sweep — the "~independent of model size"
/// contract, stated as a sublinearity bound.
const PERSIST_SUBLINEAR_FRACTION: f64 = 0.75;

/// Extractor for a flat JSON array of numbers: `"key": [v, v, v]`.
fn numbers(json: &str, key: &str, path: &str) -> Result<Vec<f64>, String> {
    let needle = format!("\"{key}\":");
    let err = || format!("{path}: missing or malformed array field \"{key}\"");
    let start = json.find(&needle).ok_or_else(err)? + needle.len();
    let rest = json[start..].trim_start();
    let inner = rest
        .strip_prefix('[')
        .and_then(|r| r.split(']').next())
        .ok_or_else(err)?;
    inner
        .split(',')
        .map(|v| v.trim().parse::<f64>().map_err(|_| err()))
        .collect()
}

fn ratchet_persist(
    baseline_json: &str,
    baseline_path: &str,
    current_json: &str,
    current_path: &str,
) -> Result<(), String> {
    let tolerance = tolerance();
    check_parity(current_json, current_path)?;

    // Zero-copy gate: deterministic (alignment, not wall clock), so it
    // holds in smoke mode too. Any copied payload byte means the lazy
    // tier fell back to owned decode somewhere.
    let copied = numbers(current_json, "lazy_copied_bytes", current_path)?;
    if let Some(bad) = copied.iter().find(|&&b| b != 0.0) {
        return Err(format!(
            "zero-copy regression: lazy tier copied {bad} payload bytes \
             (expected borrowed views at every scale; per-scale: {copied:?})"
        ));
    }

    let current_speedup = number(current_json, "speedup_top", current_path)?;
    let lazy_growth = number(current_json, "lazy_growth", current_path)?;
    let size_growth = number(current_json, "size_growth", current_path)?;
    let current_smoke = text(current_json, "smoke", current_path)?;
    let base_speedup = number(baseline_json, "speedup_top", baseline_path)?;
    let base_smoke = text(baseline_json, "smoke", baseline_path)?;

    // A smoke-mode baseline's single-rep ratios are noise; only a
    // full-mode baseline contributes a relative floor.
    let relative_floor = if base_smoke != "true" {
        base_speedup * (1.0 - tolerance)
    } else {
        0.0
    };
    let floor = relative_floor.max(PERSIST_SPEEDUP_FLOOR);
    println!(
        "ratchet[persist]: lazy install {current_speedup:.1}x faster than eager at top \
         scale vs baseline {base_speedup:.1}x (enforced floor {floor:.1}x); lazy growth \
         {lazy_growth:.1}x over a {size_growth:.0}x size range; zero-copy gate passed \
         (current smoke={current_smoke})",
    );
    if current_smoke == "true" {
        println!("ratchet[persist]: smoke-mode report — wall-clock gates skipped");
        return Ok(());
    }
    if current_speedup < floor {
        return Err(format!(
            "persist-install regression: lazy speedup {current_speedup:.2}x is below the \
             enforced floor {floor:.2}x (absolute contract {PERSIST_SPEEDUP_FLOOR}x, \
             baseline {base_speedup:.2}x at {:.0}% tolerance)",
            tolerance * 100.0
        ));
    }
    let growth_ceiling = size_growth * PERSIST_SUBLINEAR_FRACTION;
    if lazy_growth > growth_ceiling {
        return Err(format!(
            "persist-install regression: lazy install time grew {lazy_growth:.1}x over a \
             {size_growth:.0}x size range (sublinearity ceiling {growth_ceiling:.1}x — \
             install cost must stay ~independent of model size)"
        ));
    }
    Ok(())
}

// ---- driver ------------------------------------------------------------

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = args.as_slice() else {
        return Err(format!(
            "usage: {} <baseline.json> <current.json>",
            args.first().map(String::as_str).unwrap_or("bench_ratchet")
        ));
    };
    let baseline_json = read(baseline_path)?;
    let current_json = read(current_path)?;
    let kind = text(&current_json, "bench", current_path)?;
    let baseline_kind = text(&baseline_json, "bench", baseline_path)?;
    if kind != baseline_kind {
        return Err(format!(
            "bench kind mismatch: baseline is '{baseline_kind}', current is '{kind}'"
        ));
    }
    match kind.as_str() {
        "fit_smoothing" => ratchet_fit(&baseline_json, baseline_path, &current_json, current_path)?,
        "pool_throughput" => {
            ratchet_pool(&baseline_json, baseline_path, &current_json, current_path)?
        }
        "obs_overhead" => ratchet_obs(&baseline_json, baseline_path, &current_json, current_path)?,
        "faultline_overhead" => {
            ratchet_faultline(&baseline_json, baseline_path, &current_json, current_path)?
        }
        "persist_load" => {
            ratchet_persist(&baseline_json, baseline_path, &current_json, current_path)?
        }
        other => return Err(format!("{current_path}: unknown bench kind '{other}'")),
    }
    println!("ratchet: OK");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_ratchet: {msg}");
            ExitCode::FAILURE
        }
    }
}
