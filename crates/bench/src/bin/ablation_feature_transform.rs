//! Ablation (supplementary) — feature transform: what the monotone
//! compression of curvature features buys. Curvature is heavy-tailed near
//! stationary points of the path; without compression those cusps dominate
//! the detector's distance geometry.
//!
//! ```sh
//! cargo run --release -p mfod-bench --bin ablation_feature_transform [reps]
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;

    let transforms = [
        (FeatureTransform::None, "none"),
        (FeatureTransform::Log1p, "log1p"),
        (FeatureTransform::SignedSqrt, "signed-sqrt"),
        (FeatureTransform::Winsorize(0.95), "winsorize@0.95"),
    ];
    println!("feature-transform ablation, iFor(Curvmap), c = 10%, {reps} splits\n");
    println!("{:<16} {:>10} {:>8}", "transform", "AUC mean", "std");
    for (transform, name) in transforms {
        let pipeline = GeomOutlierPipeline::new(
            PipelineConfig {
                transform,
                ..Default::default()
            },
            Arc::new(Curvature),
            Arc::new(IsolationForest::default()),
        );
        let summary = mfod::eval::run_repeated(reps, 38, |seed| {
            let (train, test) = SplitConfig {
                train_size: 96,
                contamination: 0.10,
            }
            .split_datasets(&data, seed)?;
            Ok::<_, MfodError>(vec![(
                name.to_string(),
                pipeline.fit_score_auc(&train, &test)?,
            )])
        })?;
        let m = &summary.methods[0];
        println!("{name:<16} {:>10.3} {:>8.3}", m.mean, m.std);
    }
    Ok(())
}
