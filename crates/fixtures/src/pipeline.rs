//! Deterministic fitted-pipeline fixtures.
//!
//! One fitted-pipeline builder for the streaming tests/benches and one
//! ECG acceptance split, shared by every crate that needs a realistic
//! model without re-tuning its own. Formerly `mfod_stream::fixture`
//! behind that crate's `fixtures` feature; promoted here so persist,
//! obs and bench code can reuse it without feature plumbing.

use mfod::prelude::*;
use mfod_fda::RawSample;
use std::sync::Arc;

/// Shape of the deterministic two-channel sine-bundle fixture.
#[derive(Debug, Clone)]
pub struct FixtureConfig {
    /// Training curves.
    pub n_samples: usize,
    /// Observations per curve.
    pub m: usize,
    /// Isolation-forest size.
    pub n_trees: usize,
    /// Pipeline evaluation-grid length.
    pub grid_len: usize,
}

impl Default for FixtureConfig {
    fn default() -> Self {
        FixtureConfig {
            n_samples: 12,
            m: 24,
            n_trees: 20,
            grid_len: 16,
        }
    }
}

/// Builds the standard streaming test fixture: `n_samples` two-channel
/// curves (a slowly drifting sine and its square, so the channels are
/// correlated the way the paper's ECG augmentation is), a fast
/// curvature + isolation-forest pipeline fitted on them, and the shared
/// observation times.
///
/// Returns `(fitted pipeline, training windows, observation times)`.
pub fn sine_pipeline(config: &FixtureConfig) -> (Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>) {
    let m = config.m;
    let ts: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
    let mk = |i: usize| {
        let phase = i as f64 * 0.01;
        let amp = 1.0 + 0.02 * i as f64;
        let y: Vec<f64> = ts
            .iter()
            .map(|&t| amp * (std::f64::consts::TAU * (t + phase)).sin())
            .collect();
        let y2: Vec<f64> = y.iter().map(|v| v * v).collect();
        RawSample::new(ts.clone(), vec![y, y2]).unwrap()
    };
    let train: Vec<RawSample> = (0..config.n_samples).map(mk).collect();
    let fitted = GeomOutlierPipeline::new(
        PipelineConfig {
            selector: mfod_fda::BasisSelector {
                sizes: vec![6],
                lambdas: vec![1e-4],
                ..Default::default()
            },
            grid_len: config.grid_len,
            ..Default::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: config.n_trees,
            ..Default::default()
        }),
    )
    .fit(&train)
    .unwrap()
    .into_shared();
    (fitted, train, ts)
}

/// Simulated-ECG train/test split used by the end-to-end acceptance
/// tests: 42 normal + 14 abnormal beats augmented to bivariate MFD,
/// split 28/28 with 10% training contamination.
pub fn ecg_split() -> (LabeledDataSet, LabeledDataSet) {
    let data = EcgSimulator::new(EcgConfig {
        m: 40,
        ..Default::default()
    })
    .unwrap()
    .generate(42, 14, 2020)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let split = SplitConfig {
        train_size: 28,
        contamination: 0.1,
    };
    split.split_datasets(&data, 3).unwrap()
}

/// Fits the acceptance-test pipeline (fast config, curvature mapping,
/// 60-tree forest) on an ECG training split from [`ecg_split`].
pub fn ecg_fitted(train: &LabeledDataSet) -> Arc<FittedPipeline> {
    GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 60,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap()
    .into_shared()
}
