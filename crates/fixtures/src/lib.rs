//! # mfod-fixtures
//!
//! Shared **test and bench fixtures** for the workspace — a dev-only
//! crate so that unit tests, integration tests, proptests and benches
//! all build against one fixture helper instead of copy-pasting
//! pipeline setups. No production crate depends on this one; it appears
//! strictly under `[dev-dependencies]`.
//!
//! * pipeline fixtures (re-exported at the root) — deterministic fitted
//!   pipelines: the two-channel sine bundle ([`sine_pipeline`]) and the
//!   simulated-ECG acceptance split ([`ecg_split`]/[`ecg_fitted`]).
//!   These moved here from `mfod-stream`'s former `fixtures` cargo
//!   feature, which this crate replaces.
//! * [`persist`] — synthetic persist-layer fixtures: large multi-section
//!   "tenant fleet" snapshots for exercising the eager vs lazy decode
//!   tiers at controllable scale.

pub mod persist;
mod pipeline;

pub use pipeline::{ecg_fitted, ecg_split, sine_pipeline, FixtureConfig};
