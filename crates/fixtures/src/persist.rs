//! Synthetic persist-layer fixtures: multi-section **tenant fleet**
//! snapshots.
//!
//! The zero-copy decode work needs snapshots that are (a) large enough
//! to make eager-vs-lazy install costs measurable, (b) split across many
//! independently addressable sections so a lazy reader can touch one
//! tenant without decoding the rest, and (c) fully deterministic so
//! per-section digests can be asserted bit-for-bit across decode tiers.
//! Real fitted pipelines satisfy none of these at controllable scale, so
//! this module builds a synthetic fleet: one section per tenant, each
//! holding one [`Matrix`] of LCG-generated values.
//!
//! Section bodies start with the matrix header (two `u64` dims = 16
//! bytes), and the container pads every section to an 8-aligned file
//! offset, so the `f64` payload of every tenant lands 8-byte aligned in
//! a mapped file — the zero-copy tier serves all of them in place.

use mfod_linalg::Matrix;
use mfod_persist::{
    crc32, hash_f64s, Decode, Encode, LazySnapshot, PersistError, SnapshotReader, SnapshotWriter,
    FORMAT_VERSION, MAGIC,
};
use std::path::Path;

/// Artifact-kind tag for tenant-fleet fixture snapshots. Far above the
/// production kinds (1–5) so a fixture file fed to a real loader fails
/// with `WrongKind` instead of decoding garbage.
pub const TENANT_FLEET_KIND: u32 = 900;

/// Shape of a synthetic tenant-fleet snapshot.
#[derive(Debug, Clone)]
pub struct TenantFleetConfig {
    /// Number of tenants, i.e. independently addressable sections.
    pub tenants: usize,
    /// Rows of each tenant's matrix.
    pub rows: usize,
    /// Columns of each tenant's matrix.
    pub cols: usize,
    /// Base seed for the deterministic value stream.
    pub seed: u64,
}

impl TenantFleetConfig {
    /// A fleet sized in multiples of the saved ECG acceptance pipeline
    /// (~100 KiB of `f64` payload at `1×`). Scale multiplies the tenant
    /// count, so larger fleets have more sections of the same size —
    /// the shape a lazy reader exploits.
    pub fn ecg_scale(mult: usize) -> Self {
        TenantFleetConfig {
            tenants: 4 * mult.max(1),
            rows: 64,
            cols: 48,
            seed: 0x5EED_1EAF,
        }
    }
}

impl Default for TenantFleetConfig {
    fn default() -> Self {
        TenantFleetConfig::ecg_scale(1)
    }
}

/// Section id carrying tenant `i`'s matrix (ids are 1-based; 0 is
/// reserved by convention for whole-artifact bodies).
pub fn tenant_section_id(i: usize) -> u32 {
    1 + i as u32
}

/// Deterministic matrix for tenant `i`: an splitmix64-style stream
/// mapped into `[-1, 1)`, keyed by `(seed, i)` so every tenant differs.
pub fn tenant_matrix(config: &TenantFleetConfig, i: usize) -> Matrix {
    let mut state = config
        .seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + i as u64));
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = config.rows * config.cols;
    let data: Vec<f64> = (0..n)
        .map(|_| (next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0)
        .collect();
    Matrix::from_vec(config.rows, config.cols, data)
}

/// Serializes a full tenant fleet: one section per tenant, each body a
/// wire-encoded [`Matrix`]. Deterministic — same config, same bytes.
pub fn tenant_fleet_bytes(config: &TenantFleetConfig) -> Vec<u8> {
    let mut w = SnapshotWriter::new(TENANT_FLEET_KIND);
    for i in 0..config.tenants {
        let m = tenant_matrix(config, i);
        w.section(tenant_section_id(i), |enc| m.encode(enc));
    }
    w.finish()
}

/// Writes a tenant fleet snapshot to `path` (atomic rename, like the
/// production save path).
pub fn write_tenant_fleet(path: &Path, config: &TenantFleetConfig) -> mfod_persist::Result<()> {
    mfod_persist::save_bytes(path, &tenant_fleet_bytes(config))
}

/// Eagerly decodes every tenant of a fleet snapshot, in section order —
/// the "owned tier" arm of eager-vs-lazy comparisons.
pub fn decode_fleet_eager(bytes: &[u8]) -> mfod_persist::Result<Vec<Matrix>> {
    let reader = SnapshotReader::parse(bytes)?;
    if reader.kind() != TENANT_FLEET_KIND {
        return Err(PersistError::WrongKind {
            got: reader.kind(),
            expected: TENANT_FLEET_KIND,
        });
    }
    let mut out = Vec::new();
    for id in reader.section_ids() {
        let mut dec = reader.section(id)?;
        let m = Matrix::decode(&mut dec)?;
        dec.finish()?;
        out.push(m);
    }
    Ok(out)
}

/// Stable content digest of a matrix (shape + `f64` bit patterns) for
/// asserting bit-for-bit equality across decode tiers without holding
/// both copies.
pub fn matrix_digest(m: &Matrix) -> u64 {
    hash_f64s(m.as_slice()) ^ ((m.nrows() as u64) << 32 | m.ncols() as u64)
}

/// Touches tenant `i` of an opened lazy fleet snapshot and returns its
/// digest — the "borrowed tier" arm of eager-vs-lazy comparisons.
pub fn lazy_tenant_digest(snap: &LazySnapshot<'_>, i: usize) -> mfod_persist::Result<u64> {
    let m: &Matrix = snap.section_value(tenant_section_id(i))?;
    Ok(matrix_digest(m))
}

/// The container magic/version this fixture emits — re-exported so
/// tamper tests can assert they corrupt what they think they corrupt.
pub fn header_fingerprint() -> (u32, [u8; 4]) {
    (FORMAT_VERSION, MAGIC)
}

/// CRC-32 of the fleet bytes minus the trailer — handy for tamper
/// fixtures that want to re-seal a deliberately corrupted payload.
pub fn reseal_crc(bytes_without_trailer: &[u8]) -> u32 {
    crc32(bytes_without_trailer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_persist::SharedBytes;

    #[test]
    fn fleet_is_deterministic_and_tenant_sections_are_distinct() {
        let config = TenantFleetConfig::ecg_scale(1);
        let a = tenant_fleet_bytes(&config);
        let b = tenant_fleet_bytes(&config);
        assert_eq!(a, b, "same config must produce identical bytes");
        let fleet = decode_fleet_eager(&a).unwrap();
        assert_eq!(fleet.len(), config.tenants);
        let digests: std::collections::HashSet<u64> = fleet.iter().map(matrix_digest).collect();
        assert_eq!(digests.len(), config.tenants, "tenant payloads must differ");
    }

    #[test]
    fn lazy_tenant_digests_match_the_eager_tier() {
        let config = TenantFleetConfig {
            tenants: 3,
            rows: 7,
            cols: 5,
            seed: 41,
        };
        let bytes = tenant_fleet_bytes(&config);
        let eager = decode_fleet_eager(&bytes).unwrap();
        let shared = SharedBytes::from_vec(bytes);
        let snap = LazySnapshot::open_shared(&shared).unwrap();
        for (i, m) in eager.iter().enumerate() {
            assert_eq!(lazy_tenant_digest(&snap, i).unwrap(), matrix_digest(m));
        }
    }

    #[test]
    fn mapped_fleet_serves_tenants_zero_copy() {
        let dir = std::env::temp_dir().join(format!("mfod-fixture-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.mfod");
        let config = TenantFleetConfig::ecg_scale(1);
        write_tenant_fleet(&path, &config).unwrap();
        let shared = SharedBytes::map(&path).unwrap();
        let snap = LazySnapshot::open_shared(&shared).unwrap();
        let m: &Matrix = snap.section_value(tenant_section_id(0)).unwrap();
        assert!(
            m.is_borrowed(),
            "8-aligned sections must decode zero-copy from a mapping"
        );
        assert_eq!(matrix_digest(m), matrix_digest(&tenant_matrix(&config, 0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
