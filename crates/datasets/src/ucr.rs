//! Loader for UCR-archive-style time-series files, so the paper's actual
//! **ECG200** data can be dropped in when available.
//!
//! The UCR format is one sample per line: the class label followed by the
//! `m` measurements, separated by commas, tabs or whitespace. ECG200 labels
//! are `1` (normal) and `-1` (abnormal); pass `outlier_label = "-1"`.

use crate::error::DatasetError;
use crate::labeled::LabeledDataSet;
use crate::Result;
use mfod_fda::RawSample;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Loads a UCR-style file, mapping lines whose label equals `outlier_label`
/// to outliers. Measurements are placed on the uniform grid `[0, 1]`.
pub fn load_ucr_file(path: impl AsRef<Path>, outlier_label: &str) -> Result<LabeledDataSet> {
    let file = std::fs::File::open(path)?;
    parse_ucr(BufReader::new(file), outlier_label)
}

/// Parses UCR content from any reader (exposed for testing).
pub fn parse_ucr(reader: impl BufRead, outlier_label: &str) -> Result<LabeledDataSet> {
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    let mut expected_m: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c == '\t' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        if fields.len() < 3 {
            return Err(DatasetError::Parse {
                line: lineno + 1,
                message: format!("need a label and >= 2 values, got {} fields", fields.len()),
            });
        }
        // UCR labels may be written as integers or floats ("1", "1.0", "-1")
        let label_matches = fields[0] == outlier_label
            || match (fields[0].parse::<f64>(), outlier_label.parse::<f64>()) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            };
        let m = fields.len() - 1;
        if let Some(e) = expected_m {
            if m != e {
                return Err(DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("inconsistent length {m}, expected {e}"),
                });
            }
        } else {
            expected_m = Some(m);
        }
        let values = fields[1..]
            .iter()
            .map(|s| {
                s.parse::<f64>().map_err(|e| DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("bad value {s:?}: {e}"),
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        samples.push(RawSample::new(grid, vec![values])?);
        labels.push(label_matches);
    }
    if samples.is_empty() {
        return Err(DatasetError::Parse {
            line: 0,
            message: "file contains no samples".into(),
        });
    }
    LabeledDataSet::new(samples, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_comma_separated() {
        let content = "1,0.1,0.2,0.3\n-1,5.0,5.1,5.2\n";
        let d = parse_ucr(Cursor::new(content), "-1").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[false, true]);
        assert_eq!(d.samples()[0].channels[0], vec![0.1, 0.2, 0.3]);
        assert_eq!(d.samples()[0].t, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn parses_whitespace_and_float_labels() {
        let content = "1.0  0.1  0.2\n-1.0\t4.0\t4.1\n";
        let d = parse_ucr(Cursor::new(content), "-1").unwrap();
        assert_eq!(d.labels(), &[false, true]);
    }

    #[test]
    fn skips_blank_lines() {
        let content = "\n1,0.0,1.0\n\n-1,2.0,3.0\n\n";
        let d = parse_ucr(Cursor::new(content), "-1").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_ucr(Cursor::new("1,0.1\n"), "-1").is_err()); // too short
        assert!(parse_ucr(Cursor::new("1,a,b,c\n"), "-1").is_err()); // bad value
        assert!(parse_ucr(Cursor::new(""), "-1").is_err()); // empty
                                                            // inconsistent lengths
        assert!(parse_ucr(Cursor::new("1,0.0,1.0,2.0\n-1,1.0,2.0\n"), "-1").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mfod_ucr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "1,0.5,0.6,0.7\n-1,9.0,9.1,9.2\n").unwrap();
        let d = load_ucr_file(&path, "-1").unwrap();
        assert_eq!(d.n_outliers(), 1);
        std::fs::remove_file(&path).unwrap();
        assert!(load_ucr_file(dir.join("missing.txt"), "-1").is_err());
    }
}
