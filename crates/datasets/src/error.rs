//! Error type for dataset generation and IO.

use mfod_fda::FdaError;
use std::fmt;

/// Errors produced while generating, splitting or loading datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// A generator or splitter parameter is out of range.
    InvalidParameter(String),
    /// Labels and samples disagree in length.
    LabelMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Not enough samples of one class to honor a requested split.
    NotEnoughSamples {
        /// What was missing (e.g. `"outliers"`).
        what: &'static str,
        /// Available count.
        have: usize,
        /// Requested count.
        need: usize,
    },
    /// A file could not be read or written.
    Io(std::io::Error),
    /// A data file was malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// An underlying functional-data operation failed.
    Fda(FdaError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DatasetError::LabelMismatch { samples, labels } => {
                write!(f, "label mismatch: {samples} samples vs {labels} labels")
            }
            DatasetError::NotEnoughSamples { what, have, need } => {
                write!(f, "not enough {what}: have {have}, need {need}")
            }
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DatasetError::Fda(e) => write!(f, "functional data error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Fda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<FdaError> for DatasetError {
    fn from(e: FdaError) -> Self {
        DatasetError::Fda(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DatasetError::InvalidParameter("c".into())
            .to_string()
            .contains('c'));
        assert!(DatasetError::LabelMismatch {
            samples: 3,
            labels: 2
        }
        .to_string()
        .contains('3'));
        assert!(DatasetError::NotEnoughSamples {
            what: "outliers",
            have: 1,
            need: 5
        }
        .to_string()
        .contains("outliers"));
        assert!(DatasetError::Parse {
            line: 7,
            message: "bad".into()
        }
        .to_string()
        .contains('7'));
        let io: DatasetError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("io error"));
        let fda: DatasetError = FdaError::NonFinite.into();
        assert!(fda.to_string().contains("functional"));
        use std::error::Error;
        assert!(io.source().is_some());
        assert!(fda.source().is_some());
        assert!(DatasetError::InvalidParameter("x".into())
            .source()
            .is_none());
    }
}
