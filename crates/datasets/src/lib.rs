//! # mfod-datasets
//!
//! Data for the paper's experiments, and the substitution for its one
//! external resource:
//!
//! * [`ecg`] — a parametric ECG-beat simulator standing in for the
//!   PhysioNet/UCR **ECG200** dataset (m = 85 samples per beat, a normal
//!   class and an abnormal class mixing persistent-shape, isolated and
//!   mixed-type outliers). See DESIGN.md for the substitution rationale;
//!   [`ucr`] can load the real file if present.
//! * [`taxonomy`] — synthetic generators for each class of the Hubert et
//!   al. outlier taxonomy the paper builds on (Sec. 1.1): isolated
//!   magnitude/shift, persistent shape/amplitude, and the mixed-type
//!   "abnormal correlation between channels" case that motivates the
//!   geometric mapping.
//! * [`fig1`] — the bivariate example of the paper's Fig. 1 (21 samples,
//!   one shape-persistent outlier).
//! * [`split`] — contamination-controlled train/test splitting
//!   (Sec. 4.1: training sets with c ∈ {5,…,25}% outliers).
//! * [`labeled`] — the `(samples, labels)` container shared by all of the
//!   above, with CSV persistence.

// Index-based loops are used deliberately in the numeric kernels: the
// loop index mirrors the textbook formulas being implemented.
#![allow(clippy::needless_range_loop)]

pub mod ecg;
pub mod error;
pub mod fig1;
pub mod labeled;
pub(crate) mod rngutil;
pub mod split;
pub mod taxonomy;
pub mod ucr;

pub use ecg::{AbnormalMode, EcgConfig, EcgSimulator};
pub use error::DatasetError;
pub use labeled::LabeledDataSet;
pub use split::{ContaminatedSplit, SplitConfig};
pub use taxonomy::{OutlierType, TaxonomyConfig};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, DatasetError>;
