//! Contamination-controlled train/test splitting (Sec. 4.1 of the paper):
//! the training set is built with a prescribed outlier ratio
//! `c ∈ {5, 10, 15, 20, 25}%` and the remaining samples form the test set.

use crate::error::DatasetError;
use crate::labeled::LabeledDataSet;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Split configuration.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Training-set size.
    pub train_size: usize,
    /// Training contamination level `c ∈ [0, 1)`: the fraction of training
    /// samples that are outliers.
    pub contamination: f64,
}

/// A materialized train/test split.
#[derive(Debug, Clone)]
pub struct ContaminatedSplit {
    /// Indices (into the source dataset) of the training samples.
    pub train_indices: Vec<usize>,
    /// Indices of the test samples (everything not used for training).
    pub test_indices: Vec<usize>,
}

impl SplitConfig {
    /// Draws a random split honoring the contamination level exactly
    /// (`round(train_size · c)` outliers in training).
    pub fn split(&self, data: &LabeledDataSet, seed: u64) -> Result<ContaminatedSplit> {
        if !(0.0..1.0).contains(&self.contamination) {
            return Err(DatasetError::InvalidParameter(format!(
                "contamination must be in [0, 1), got {}",
                self.contamination
            )));
        }
        if self.train_size == 0 || self.train_size >= data.len() {
            return Err(DatasetError::InvalidParameter(format!(
                "train_size must be in [1, n); got {} for n = {}",
                self.train_size,
                data.len()
            )));
        }
        let n_out_train = (self.train_size as f64 * self.contamination).round() as usize;
        let n_in_train = self.train_size - n_out_train;
        let mut outliers = data.outlier_indices();
        let mut inliers = data.inlier_indices();
        if outliers.len() < n_out_train {
            return Err(DatasetError::NotEnoughSamples {
                what: "outliers",
                have: outliers.len(),
                need: n_out_train,
            });
        }
        if inliers.len() < n_in_train {
            return Err(DatasetError::NotEnoughSamples {
                what: "inliers",
                have: inliers.len(),
                need: n_in_train,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut outliers, &mut rng);
        shuffle(&mut inliers, &mut rng);
        let mut train_indices: Vec<usize> = Vec::with_capacity(self.train_size);
        train_indices.extend_from_slice(&inliers[..n_in_train]);
        train_indices.extend_from_slice(&outliers[..n_out_train]);
        shuffle(&mut train_indices, &mut rng);
        let mut test_indices: Vec<usize> = Vec::new();
        test_indices.extend_from_slice(&inliers[n_in_train..]);
        test_indices.extend_from_slice(&outliers[n_out_train..]);
        shuffle(&mut test_indices, &mut rng);
        Ok(ContaminatedSplit {
            train_indices,
            test_indices,
        })
    }

    /// Materializes `(train, test)` datasets for a split drawn with `seed`.
    pub fn split_datasets(
        &self,
        data: &LabeledDataSet,
        seed: u64,
    ) -> Result<(LabeledDataSet, LabeledDataSet)> {
        let s = self.split(data, seed)?;
        Ok((
            data.subset(&s.train_indices)?,
            data.subset(&s.test_indices)?,
        ))
    }
}

/// Fisher–Yates shuffle using the crate's seeded RNG (avoids pulling in the
/// `rand` `SliceRandom` trait for one call site).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fda::RawSample;

    fn dataset(n_in: usize, n_out: usize) -> LabeledDataSet {
        let mk = |v: f64| RawSample::new(vec![0.0, 1.0], vec![vec![v, v]]).unwrap();
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_in {
            samples.push(mk(i as f64));
            labels.push(false);
        }
        for i in 0..n_out {
            samples.push(mk(1000.0 + i as f64));
            labels.push(true);
        }
        LabeledDataSet::new(samples, labels).unwrap()
    }

    #[test]
    fn exact_contamination() {
        let data = dataset(80, 40);
        for &c in &[0.05, 0.10, 0.15, 0.20, 0.25] {
            let cfg = SplitConfig {
                train_size: 60,
                contamination: c,
            };
            let (train, test) = cfg.split_datasets(&data, 42).unwrap();
            assert_eq!(train.len(), 60);
            assert_eq!(test.len(), 60);
            let expect = (60.0 * c).round() as usize;
            assert_eq!(train.n_outliers(), expect, "c={c}");
            assert_eq!(test.n_outliers(), 40 - expect);
        }
    }

    #[test]
    fn partition_is_exact() {
        let data = dataset(30, 10);
        let cfg = SplitConfig {
            train_size: 20,
            contamination: 0.2,
        };
        let s = cfg.split(&data, 7).unwrap();
        let mut all: Vec<usize> = s
            .train_indices
            .iter()
            .chain(&s.test_indices)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let data = dataset(50, 20);
        let cfg = SplitConfig {
            train_size: 30,
            contamination: 0.1,
        };
        let a = cfg.split(&data, 1).unwrap();
        let b = cfg.split(&data, 2).unwrap();
        assert_ne!(a.train_indices, b.train_indices);
        let c = cfg.split(&data, 1).unwrap();
        assert_eq!(a.train_indices, c.train_indices);
    }

    #[test]
    fn error_paths() {
        let data = dataset(10, 2);
        assert!(SplitConfig {
            train_size: 0,
            contamination: 0.1
        }
        .split(&data, 0)
        .is_err());
        assert!(SplitConfig {
            train_size: 12,
            contamination: 0.1
        }
        .split(&data, 0)
        .is_err());
        assert!(SplitConfig {
            train_size: 5,
            contamination: 1.0
        }
        .split(&data, 0)
        .is_err());
        assert!(SplitConfig {
            train_size: 5,
            contamination: -0.1
        }
        .split(&data, 0)
        .is_err());
        // requesting more outliers than available
        assert!(matches!(
            SplitConfig {
                train_size: 10,
                contamination: 0.5
            }
            .split(&data, 0),
            Err(DatasetError::NotEnoughSamples {
                what: "outliers",
                ..
            })
        ));
        // requesting more inliers than available
        let data = dataset(3, 20);
        assert!(matches!(
            SplitConfig {
                train_size: 10,
                contamination: 0.1
            }
            .split(&data, 0),
            Err(DatasetError::NotEnoughSamples {
                what: "inliers",
                ..
            })
        ));
    }

    #[test]
    fn zero_contamination_allowed() {
        let data = dataset(20, 5);
        let cfg = SplitConfig {
            train_size: 10,
            contamination: 0.0,
        };
        let (train, test) = cfg.split_datasets(&data, 3).unwrap();
        assert_eq!(train.n_outliers(), 0);
        assert_eq!(test.n_outliers(), 5);
    }
}
