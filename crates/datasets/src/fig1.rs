//! The bivariate example of the paper's **Fig. 1**: 21 MFD samples
//! (`p = 2`) with one shape-persistent outlier, shown in the paper both as
//! `(t, x₁, x₂)` trajectories and as their `(x₁, x₂)` projection.
//!
//! Inliers trace one loop of a (slightly eccentric, phase-jittered) circle
//! in the `(x₁, x₂)` plane with amplitudes spanning roughly `[-2, 2]`; the
//! outlier traverses a figure-eight (a Lissajous 1:2 curve) — its channels
//! stay within the same range, so the outlyingness lives entirely in the
//! *shape* of the path, invisible pointwise: exactly the situation Fig. 1
//! illustrates.

use crate::error::DatasetError;
use crate::labeled::LabeledDataSet;
use crate::rngutil::standard_normal;
use crate::Result;
use mfod_fda::RawSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Fig. 1 generator.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Total samples, outlier included (the paper shows 21).
    pub n: usize,
    /// Measurement points per sample.
    pub m: usize,
    /// Measurement noise standard deviation.
    pub noise_std: f64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            n: 21,
            m: 101,
            noise_std: 0.02,
        }
    }
}

/// Generates the Fig. 1 dataset. The single outlier is the **last** sample.
pub fn generate(config: &Fig1Config, seed: u64) -> Result<LabeledDataSet> {
    if config.n < 2 {
        return Err(DatasetError::InvalidParameter(format!(
            "need n >= 2 samples, got {}",
            config.n
        )));
    }
    if config.m < 8 {
        return Err(DatasetError::InvalidParameter(format!(
            "need m >= 8 points, got {}",
            config.m
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let grid: Vec<f64> = (0..config.m)
        .map(|j| j as f64 / (config.m - 1) as f64)
        .collect();
    let mut samples = Vec::with_capacity(config.n);
    let mut labels = Vec::with_capacity(config.n);
    for _ in 0..config.n - 1 {
        let amp1 = 1.7 + 0.15 * standard_normal(&mut rng);
        let amp2 = 1.7 + 0.15 * standard_normal(&mut rng);
        let phase = 0.03 * standard_normal(&mut rng);
        let x1: Vec<f64> = grid
            .iter()
            .map(|&t| {
                amp1 * (std::f64::consts::TAU * (t + phase)).cos()
                    + config.noise_std * standard_normal(&mut rng)
            })
            .collect();
        let x2: Vec<f64> = grid
            .iter()
            .map(|&t| {
                amp2 * (std::f64::consts::TAU * (t + phase)).sin()
                    + config.noise_std * standard_normal(&mut rng)
            })
            .collect();
        samples.push(RawSample::new(grid.clone(), vec![x1, x2])?);
        labels.push(false);
    }
    // the shape-persistent outlier: a 1:2 Lissajous figure-eight whose
    // channels individually remain in the inlier range
    let x1: Vec<f64> = grid
        .iter()
        .map(|&t| {
            1.7 * (std::f64::consts::TAU * t).cos() + config.noise_std * standard_normal(&mut rng)
        })
        .collect();
    let x2: Vec<f64> = grid
        .iter()
        .map(|&t| {
            1.7 * (2.0 * std::f64::consts::TAU * t).sin()
                + config.noise_std * standard_normal(&mut rng)
        })
        .collect();
    samples.push(RawSample::new(grid, vec![x1, x2])?);
    labels.push(true);
    LabeledDataSet::new(samples, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_figure() {
        let d = generate(&Fig1Config::default(), 1).unwrap();
        assert_eq!(d.len(), 21);
        assert_eq!(d.n_outliers(), 1);
        assert_eq!(d.outlier_indices(), vec![20]);
        for s in d.samples() {
            assert_eq!(s.dim(), 2);
            assert_eq!(s.len(), 101);
        }
    }

    #[test]
    fn channels_share_range() {
        // the outlier must NOT be a magnitude outlier: its channel ranges
        // overlap the inliers'
        let d = generate(&Fig1Config::default(), 2).unwrap();
        let max_abs =
            |s: &RawSample, k: usize| s.channels[k].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let out = &d.samples()[20];
        for k in 0..2 {
            let out_range = max_abs(out, k);
            let inl_ranges: Vec<f64> = (0..20).map(|i| max_abs(&d.samples()[i], k)).collect();
            let max_inl = inl_ranges.iter().fold(0.0f64, |m, &v| m.max(v));
            assert!(
                out_range < max_inl * 1.3,
                "channel {k}: {out_range} vs {max_inl}"
            );
        }
    }

    #[test]
    fn outlier_path_differs_in_shape() {
        // inlier paths are near-circles: ‖(x1, x2)‖ ≈ const; the
        // figure-eight's radius collapses near its crossing point
        let cfg = Fig1Config {
            noise_std: 0.0,
            ..Default::default()
        };
        let d = generate(&cfg, 3).unwrap();
        let radius_spread = |s: &RawSample| {
            let radii: Vec<f64> = s.channels[0]
                .iter()
                .zip(&s.channels[1])
                .map(|(a, b)| (a * a + b * b).sqrt())
                .collect();
            let max = radii.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
            let min = radii.iter().fold(f64::INFINITY, |m, &v| m.min(v));
            max - min
        };
        let out_spread = radius_spread(&d.samples()[20]);
        for i in 0..20 {
            assert!(radius_spread(&d.samples()[i]) < out_spread);
        }
    }

    #[test]
    fn validation_and_reproducibility() {
        assert!(generate(
            &Fig1Config {
                n: 1,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(generate(
            &Fig1Config {
                m: 3,
                ..Default::default()
            },
            0
        )
        .is_err());
        let a = generate(&Fig1Config::default(), 9).unwrap();
        let b = generate(&Fig1Config::default(), 9).unwrap();
        assert_eq!(a.samples()[5].channels, b.samples()[5].channels);
    }
}
