//! Synthetic generators for the functional-outlier taxonomy of Hubert,
//! Rousseeuw & Segaert (2015) that the paper builds on (Sec. 1.1) — one
//! generator per outlier class, mirroring the single-type synthetic studies
//! of Dai & Genton referenced in the paper's footnote 1.
//!
//! Inliers follow the smooth base model
//! `x(t) = a·sin(2πt) + b·cos(2πt) + c` with mildly jittered `(a, b, c)`;
//! each [`OutlierType`] perturbs it in its own characteristic way. The
//! `CorrelationMixed` type generates *bivariate* samples whose channels are
//! linked by `x₂ = x₁²` for inliers and a broken relationship for outliers —
//! the "abnormal correlation between the parameters" case that motivates the
//! curvature mapping (Sec. 1.2, issue (3)).

use crate::error::DatasetError;
use crate::labeled::LabeledDataSet;
use crate::rngutil::{random_sign, standard_normal, uniform};
use crate::Result;
use mfod_fda::RawSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The outlier classes of the Hubert et al. taxonomy (plus the mixed-type
/// correlation case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutlierType {
    /// A narrow vertical peak at few `t` (isolated magnitude outlyingness).
    MagnitudeIsolated,
    /// A horizontal translation of the curve (isolated shift outlyingness).
    ShiftIsolated,
    /// A different functional form over all of `T` (persistent shape).
    ShapePersistent,
    /// Same shape, persistently scaled amplitude (persistent amplitude).
    AmplitudePersistent,
    /// Bivariate: inliers satisfy `x₂ = x₁²`; outliers break the relation
    /// while each channel stays marginally unremarkable (mixed type).
    CorrelationMixed,
}

impl OutlierType {
    /// All taxonomy members, for sweeps.
    pub const ALL: [OutlierType; 5] = [
        OutlierType::MagnitudeIsolated,
        OutlierType::ShiftIsolated,
        OutlierType::ShapePersistent,
        OutlierType::AmplitudePersistent,
        OutlierType::CorrelationMixed,
    ];

    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OutlierType::MagnitudeIsolated => "magnitude-isolated",
            OutlierType::ShiftIsolated => "shift-isolated",
            OutlierType::ShapePersistent => "shape-persistent",
            OutlierType::AmplitudePersistent => "amplitude-persistent",
            OutlierType::CorrelationMixed => "correlation-mixed",
        }
    }

    /// Channel count of the generated samples.
    pub fn dim(&self) -> usize {
        match self {
            OutlierType::CorrelationMixed => 2,
            _ => 1,
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TaxonomyConfig {
    /// Measurement points per sample.
    pub m: usize,
    /// White-noise standard deviation.
    pub noise_std: f64,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        TaxonomyConfig {
            m: 85,
            noise_std: 0.05,
        }
    }
}

impl TaxonomyConfig {
    /// Generates `n_inliers + n_outliers` samples of the given type
    /// (inliers first; labels `true` = outlier).
    pub fn generate(
        &self,
        outlier_type: OutlierType,
        n_inliers: usize,
        n_outliers: usize,
        seed: u64,
    ) -> Result<LabeledDataSet> {
        if self.m < 8 {
            return Err(DatasetError::InvalidParameter(format!(
                "m must be >= 8, got {}",
                self.m
            )));
        }
        if n_inliers + n_outliers == 0 {
            return Err(DatasetError::InvalidParameter(
                "need at least one sample".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let grid: Vec<f64> = (0..self.m)
            .map(|j| j as f64 / (self.m - 1) as f64)
            .collect();
        let mut samples = Vec::with_capacity(n_inliers + n_outliers);
        let mut labels = Vec::with_capacity(n_inliers + n_outliers);
        for _ in 0..n_inliers {
            samples.push(self.inlier(outlier_type, &grid, &mut rng)?);
            labels.push(false);
        }
        for _ in 0..n_outliers {
            samples.push(self.outlier(outlier_type, &grid, &mut rng)?);
            labels.push(true);
        }
        LabeledDataSet::new(samples, labels)
    }

    /// Base inlier coefficients `(a, b, c)`.
    fn base_coefs(rng: &mut StdRng) -> (f64, f64, f64) {
        (
            1.0 + 0.1 * standard_normal(rng),
            0.5 + 0.1 * standard_normal(rng),
            0.1 * standard_normal(rng),
        )
    }

    fn base_curve(grid: &[f64], a: f64, b: f64, c: f64, phase: f64) -> Vec<f64> {
        grid.iter()
            .map(|&t| {
                let w = std::f64::consts::TAU * (t + phase);
                a * w.sin() + b * w.cos() + c
            })
            .collect()
    }

    fn noisy(&self, mut y: Vec<f64>, rng: &mut StdRng) -> Vec<f64> {
        for v in y.iter_mut() {
            *v += self.noise_std * standard_normal(rng);
        }
        y
    }

    fn inlier(&self, ty: OutlierType, grid: &[f64], rng: &mut StdRng) -> Result<RawSample> {
        let (a, b, c) = Self::base_coefs(rng);
        match ty {
            OutlierType::CorrelationMixed => {
                let x1 = Self::base_curve(grid, a, b, c, 0.0);
                let x2: Vec<f64> = x1.iter().map(|&v| v * v).collect();
                Ok(RawSample::new(
                    grid.to_vec(),
                    vec![self.noisy(x1, rng), self.noisy(x2, rng)],
                )?)
            }
            _ => {
                let y = Self::base_curve(grid, a, b, c, 0.0);
                Ok(RawSample::new(grid.to_vec(), vec![self.noisy(y, rng)])?)
            }
        }
    }

    fn outlier(&self, ty: OutlierType, grid: &[f64], rng: &mut StdRng) -> Result<RawSample> {
        let (a, b, c) = Self::base_coefs(rng);
        match ty {
            OutlierType::MagnitudeIsolated => {
                let mut y = Self::base_curve(grid, a, b, c, 0.0);
                // narrow peak over ~3% of the domain
                let center = uniform(rng, 0.15, 0.85);
                let amp = random_sign(rng) * uniform(rng, 2.0, 4.0);
                for (j, &t) in grid.iter().enumerate() {
                    let z = (t - center) / 0.012;
                    y[j] += amp * (-0.5 * z * z).exp();
                }
                Ok(RawSample::new(grid.to_vec(), vec![self.noisy(y, rng)])?)
            }
            OutlierType::ShiftIsolated => {
                // horizontal translation of the whole curve
                let shift = random_sign(rng) * uniform(rng, 0.08, 0.15);
                let y = Self::base_curve(grid, a, b, c, shift);
                Ok(RawSample::new(grid.to_vec(), vec![self.noisy(y, rng)])?)
            }
            OutlierType::ShapePersistent => {
                // different functional form, same range: doubled frequency
                let y: Vec<f64> = grid
                    .iter()
                    .map(|&t| {
                        let w = 2.0 * std::f64::consts::TAU * t;
                        a * w.sin() + b * w.cos() + c
                    })
                    .collect();
                Ok(RawSample::new(grid.to_vec(), vec![self.noisy(y, rng)])?)
            }
            OutlierType::AmplitudePersistent => {
                let scale = uniform(rng, 1.6, 2.2);
                let y: Vec<f64> = Self::base_curve(grid, a, b, c, 0.0)
                    .into_iter()
                    .map(|v| v * scale)
                    .collect();
                Ok(RawSample::new(grid.to_vec(), vec![self.noisy(y, rng)])?)
            }
            OutlierType::CorrelationMixed => {
                // channels individually plausible, relationship broken:
                // x₂ tracks the square of a *different* curve
                let x1 = Self::base_curve(grid, a, b, c, 0.0);
                let (a2, b2, c2) = Self::base_coefs(rng);
                let other = Self::base_curve(grid, a2, b2, c2, 0.25);
                let x2: Vec<f64> = other.iter().map(|&v| v * v).collect();
                Ok(RawSample::new(
                    grid.to_vec(),
                    vec![self.noisy(x1, rng), self.noisy(x2, rng)],
                )?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_types_generate_expected_shapes() {
        for ty in OutlierType::ALL {
            let d = TaxonomyConfig::default().generate(ty, 10, 5, 42).unwrap();
            assert_eq!(d.len(), 15);
            assert_eq!(d.n_outliers(), 5);
            for s in d.samples() {
                assert_eq!(s.dim(), ty.dim(), "{}", ty.name());
                assert_eq!(s.len(), 85);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            OutlierType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), OutlierType::ALL.len());
    }

    #[test]
    fn magnitude_isolated_has_narrow_peak() {
        let cfg = TaxonomyConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let d = cfg
            .generate(OutlierType::MagnitudeIsolated, 1, 1, 3)
            .unwrap();
        let inlier = &d.samples()[0].channels[0];
        let outlier = &d.samples()[1].channels[0];
        // the outlier deviates hugely at few points only
        let devs: Vec<f64> = inlier
            .iter()
            .zip(outlier)
            .map(|(a, b)| (a - b).abs())
            .collect();
        let big = devs.iter().filter(|&&v| v > 1.0).count();
        assert!((1..10).contains(&big), "{big} large deviations");
    }

    #[test]
    fn amplitude_persistent_scales_range() {
        let cfg = TaxonomyConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let d = cfg
            .generate(OutlierType::AmplitudePersistent, 5, 5, 9)
            .unwrap();
        let range = |y: &[f64]| {
            y.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
                - y.iter().fold(f64::INFINITY, |m, &v| m.min(v))
        };
        let mean_in: f64 = d
            .inlier_indices()
            .iter()
            .map(|&i| range(&d.samples()[i].channels[0]))
            .sum::<f64>()
            / 5.0;
        let mean_out: f64 = d
            .outlier_indices()
            .iter()
            .map(|&i| range(&d.samples()[i].channels[0]))
            .sum::<f64>()
            / 5.0;
        assert!(mean_out > mean_in * 1.4, "{mean_out} vs {mean_in}");
    }

    #[test]
    fn correlation_mixed_marginals_similar_relationship_broken() {
        let cfg = TaxonomyConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let d = cfg
            .generate(OutlierType::CorrelationMixed, 1, 1, 5)
            .unwrap();
        let inl = &d.samples()[0];
        let out = &d.samples()[1];
        // inlier: x2 == x1² exactly (no noise)
        for (x1, x2) in inl.channels[0].iter().zip(&inl.channels[1]) {
            assert!((x1 * x1 - x2).abs() < 1e-9);
        }
        // outlier: relationship broken somewhere
        let broken = out.channels[0]
            .iter()
            .zip(&out.channels[1])
            .any(|(x1, x2)| (x1 * x1 - x2).abs() > 0.5);
        assert!(broken);
    }

    #[test]
    fn shift_outlier_translates_extremum() {
        let cfg = TaxonomyConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let d = cfg.generate(OutlierType::ShiftIsolated, 1, 1, 12).unwrap();
        let argmax = |y: &[f64]| {
            y.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let shift = argmax(&d.samples()[1].channels[0]) as isize
            - argmax(&d.samples()[0].channels[0]) as isize;
        assert!(shift.unsigned_abs() >= 3, "peak shift {shift}");
    }

    #[test]
    fn parameter_validation() {
        let cfg = TaxonomyConfig {
            m: 4,
            ..Default::default()
        };
        assert!(cfg.generate(OutlierType::ShapePersistent, 5, 1, 0).is_err());
        let cfg = TaxonomyConfig::default();
        assert!(cfg.generate(OutlierType::ShapePersistent, 0, 0, 0).is_err());
    }

    #[test]
    fn reproducibility() {
        let cfg = TaxonomyConfig::default();
        let a = cfg
            .generate(OutlierType::ShapePersistent, 3, 3, 77)
            .unwrap();
        let b = cfg
            .generate(OutlierType::ShapePersistent, 3, 3, 77)
            .unwrap();
        assert_eq!(a.samples()[4].channels, b.samples()[4].channels);
    }
}
