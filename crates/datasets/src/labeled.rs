//! Labeled functional datasets: raw samples plus outlier ground truth, with
//! CSV persistence.

use crate::error::DatasetError;
use crate::Result;
use mfod_fda::RawSample;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// A collection of raw multivariate functional samples with ground-truth
/// outlier labels (`true` = outlier).
///
/// Labels are only consumed at evaluation time (AUC computation); the
/// detection pipeline itself is unsupervised, exactly as in the paper
/// (Sec. 4.2).
#[derive(Debug, Clone)]
pub struct LabeledDataSet {
    samples: Vec<RawSample>,
    labels: Vec<bool>,
}

impl LabeledDataSet {
    /// Bundles samples and labels, validating their consistency.
    pub fn new(samples: Vec<RawSample>, labels: Vec<bool>) -> Result<Self> {
        if samples.len() != labels.len() {
            return Err(DatasetError::LabelMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        Ok(LabeledDataSet { samples, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[RawSample] {
        &self.samples
    }

    /// Borrow the labels (`true` = outlier).
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Sample and label at index `i`.
    pub fn get(&self, i: usize) -> Option<(&RawSample, bool)> {
        Some((self.samples.get(i)?, *self.labels.get(i)?))
    }

    /// Number of outliers.
    pub fn n_outliers(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of inliers.
    pub fn n_inliers(&self) -> usize {
        self.len() - self.n_outliers()
    }

    /// Indices of all outliers.
    pub fn outlier_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i]).collect()
    }

    /// Indices of all inliers.
    pub fn inlier_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.labels[i]).collect()
    }

    /// Extracts the subset at `indices` (duplicates allowed).
    pub fn subset(&self, indices: &[usize]) -> Result<LabeledDataSet> {
        let mut samples = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (s, l) = self
                .get(i)
                .ok_or_else(|| DatasetError::InvalidParameter(format!("index {i} out of range")))?;
            samples.push(s.clone());
            labels.push(l);
        }
        LabeledDataSet::new(samples, labels)
    }

    /// Applies the paper's UFD→MFD augmentation to every sample: appends a
    /// channel derived point-wise from channel `channel` (Sec. 4.1 appends
    /// the square of the series).
    pub fn augment_with(&self, channel: usize, f: impl Fn(f64) -> f64 + Copy) -> Result<Self> {
        let samples = self
            .samples
            .iter()
            .map(|s| s.augment_with(channel, f).map_err(DatasetError::from))
            .collect::<Result<Vec<_>>>()?;
        LabeledDataSet::new(samples, self.labels.clone())
    }

    /// Z-normalizes channel `channel` of every sample in place (per-sample
    /// mean 0, standard deviation 1) — the preprocessing convention of the
    /// UCR archive the paper's ECG200 data comes in. Channels with zero
    /// variance are only centered.
    pub fn znormalize_channel(&self, channel: usize) -> Result<Self> {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let c = s.channels.get(channel).ok_or_else(|| {
                    DatasetError::InvalidParameter(format!(
                        "channel {channel} out of range (p = {})",
                        s.dim()
                    ))
                })?;
                let mean = c.iter().sum::<f64>() / c.len() as f64;
                let var = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / c.len() as f64;
                let std = var.sqrt();
                let scale = if std > 1e-12 { 1.0 / std } else { 1.0 };
                let normalized: Vec<f64> = c.iter().map(|v| (v - mean) * scale).collect();
                let mut channels = s.channels.clone();
                channels[channel] = normalized;
                Ok(RawSample {
                    t: s.t.clone(),
                    channels,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        LabeledDataSet::new(samples, self.labels.clone())
    }

    /// Writes the dataset as CSV: one row per sample, columns
    /// `label, t_1, …, t_m, y_11, …` (channels concatenated).
    pub fn save_csv(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut file = std::fs::File::create(path)?;
        for (s, &label) in self.samples.iter().zip(&self.labels) {
            let mut row = Vec::with_capacity(2 + s.t.len() * (1 + s.dim()));
            row.push(if label {
                "1".to_string()
            } else {
                "0".to_string()
            });
            row.push(s.dim().to_string());
            row.extend(s.t.iter().map(|v| format!("{v:?}")));
            for c in &s.channels {
                row.extend(c.iter().map(|v| format!("{v:?}")));
            }
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Loads a dataset written by [`LabeledDataSet::save_csv`].
    pub fn load_csv(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let reader = BufReader::new(file);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            let parse = |s: &str, what: &str| -> Result<f64> {
                s.trim().parse::<f64>().map_err(|e| DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("{what}: {e}"),
                })
            };
            if fields.len() < 4 {
                return Err(DatasetError::Parse {
                    line: lineno + 1,
                    message: "need at least label, p, and two points".into(),
                });
            }
            let label = match fields[0].trim() {
                "1" => true,
                "0" => false,
                other => {
                    return Err(DatasetError::Parse {
                        line: lineno + 1,
                        message: format!("label must be 0/1, got {other}"),
                    })
                }
            };
            let p = parse(fields[1], "channel count")? as usize;
            if p == 0 || !(fields.len() - 2).is_multiple_of(p + 1) {
                return Err(DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("field count {} incompatible with p = {p}", fields.len()),
                });
            }
            let m = (fields.len() - 2) / (p + 1);
            let t = fields[2..2 + m]
                .iter()
                .map(|s| parse(s, "abscissa"))
                .collect::<Result<Vec<_>>>()?;
            let mut channels = Vec::with_capacity(p);
            for k in 0..p {
                let start = 2 + m * (k + 1);
                channels.push(
                    fields[start..start + m]
                        .iter()
                        .map(|s| parse(s, "value"))
                        .collect::<Result<Vec<_>>>()?,
                );
            }
            samples.push(RawSample::new(t, channels)?);
            labels.push(label);
        }
        LabeledDataSet::new(samples, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledDataSet {
        let s1 = RawSample::new(vec![0.0, 0.5, 1.0], vec![vec![1.0, 2.0, 3.0]]).unwrap();
        let s2 = RawSample::new(vec![0.0, 0.5, 1.0], vec![vec![-1.0, 0.0, 1.0]]).unwrap();
        let s3 = RawSample::new(vec![0.0, 0.5, 1.0], vec![vec![9.0, 9.0, 9.0]]).unwrap();
        LabeledDataSet::new(vec![s1, s2, s3], vec![false, false, true]).unwrap()
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.n_outliers(), 1);
        assert_eq!(d.n_inliers(), 2);
        assert_eq!(d.outlier_indices(), vec![2]);
        assert_eq!(d.inlier_indices(), vec![0, 1]);
        assert!(d.get(2).unwrap().1);
        assert!(d.get(9).is_none());
        assert_eq!(d.samples().len(), 3);
        assert_eq!(d.labels(), &[false, false, true]);
    }

    #[test]
    fn label_mismatch_rejected() {
        let s = RawSample::new(vec![0.0, 1.0], vec![vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            LabeledDataSet::new(vec![s], vec![true, false]),
            Err(DatasetError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn subset_and_errors() {
        let d = tiny();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.labels()[0]);
        assert!(!s.labels()[1]);
        assert!(d.subset(&[5]).is_err());
    }

    #[test]
    fn augmentation_square() {
        let d = tiny();
        let a = d.augment_with(0, |y| y * y).unwrap();
        assert_eq!(a.samples()[0].dim(), 2);
        assert_eq!(a.samples()[0].channels[1], vec![1.0, 4.0, 9.0]);
        assert_eq!(a.labels(), d.labels());
        assert!(d.augment_with(3, |y| y).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let d = tiny().augment_with(0, |y| y * 0.5).unwrap();
        let dir = std::env::temp_dir().join("mfod_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        d.save_csv(&path).unwrap();
        let loaded = LabeledDataSet::load_csv(&path).unwrap();
        assert_eq!(loaded.len(), d.len());
        assert_eq!(loaded.labels(), d.labels());
        for (a, b) in loaded.samples().iter().zip(d.samples()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.channels, b.channels);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_malformed_inputs() {
        let dir = std::env::temp_dir().join("mfod_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "2,1,0.0,1.0,5.0,6.0\n").unwrap();
        assert!(matches!(
            LabeledDataSet::load_csv(&path),
            Err(DatasetError::Parse { .. })
        ));
        std::fs::write(&path, "1,abc,0.0,1.0\n").unwrap();
        assert!(LabeledDataSet::load_csv(&path).is_err());
        std::fs::write(&path, "1,1\n").unwrap();
        assert!(LabeledDataSet::load_csv(&path).is_err());
        // wrong field count for declared p
        std::fs::write(&path, "1,2,0.0,1.0,5.0\n").unwrap();
        assert!(LabeledDataSet::load_csv(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
