//! Parametric ECG beat simulator — the stand-in for the PhysioNet/UCR
//! **ECG200** dataset used in the paper's evaluation (Sec. 4.1).
//!
//! A heartbeat is modeled as a sum of Gaussian bumps for the P, Q, R, S and
//! T waves (a discrete-time simplification of the McSharry et al. dynamical
//! ECG model). The *normal* class jitters the wave parameters mildly; the
//! *abnormal* class applies one or two pathological transformations chosen
//! at random, covering exactly the outlier classes the paper argues the ECG
//! abnormal class contains (Sec. 4.3):
//!
//! | mode | clinical analogue | outlier class (Hubert taxonomy) |
//! |------|-------------------|--------------------------------|
//! | T-wave inversion | ischemia | persistent shape |
//! | ST depression | ischemia | persistent shape/magnitude |
//! | widened QRS | bundle branch block | persistent shape |
//! | ectopic spike | premature beat artifact | isolated magnitude |
//! | beat shift | mistriggered segmentation | isolated shift |
//!
//! Because abnormal beats may combine two modes, the abnormal class also
//! contains the paper's *mixed-type* outliers. Measurements are taken on a
//! uniform grid of `m = 85` points (ECG200's length) with white noise.

use crate::error::DatasetError;
use crate::labeled::LabeledDataSet;
use crate::rngutil::{random_sign, standard_normal, uniform};
use crate::Result;
use mfod_fda::RawSample;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One Gaussian wave component `amp · exp(−(t − center)² / (2 width²))`.
#[derive(Debug, Clone, Copy)]
struct Wave {
    amp: f64,
    center: f64,
    width: f64,
}

impl Wave {
    fn eval(&self, t: f64) -> f64 {
        let z = (t - self.center) / self.width;
        self.amp * (-0.5 * z * z).exp()
    }
}

/// Template P-QRS-T morphology on the unit interval.
const TEMPLATE: [Wave; 5] = [
    Wave {
        amp: 0.15,
        center: 0.18,
        width: 0.035,
    }, // P
    Wave {
        amp: -0.12,
        center: 0.35,
        width: 0.012,
    }, // Q
    Wave {
        amp: 1.0,
        center: 0.40,
        width: 0.016,
    }, // R
    Wave {
        amp: -0.25,
        center: 0.45,
        width: 0.014,
    }, // S
    Wave {
        amp: 0.35,
        center: 0.65,
        width: 0.060,
    }, // T
];

/// Index of the T wave in [`TEMPLATE`].
const T_WAVE: usize = 4;

/// Pathological transformations applied to abnormal beats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbnormalMode {
    /// Inverted T wave (ischemia) — persistent shape outlyingness.
    TWaveInversion,
    /// Depressed ST segment — persistent shape/magnitude outlyingness.
    StDepression,
    /// Widened QRS complex (bundle branch block) — persistent shape.
    WideQrs,
    /// Notched (split) R wave with unchanged amplitude — a *dynamics*
    /// anomaly nearly invisible pointwise, strong under curvature.
    NotchedR,
    /// Narrow ectopic spike — isolated magnitude outlyingness.
    EctopicSpike,
    /// Whole-beat shift (mistriggered segmentation) — isolated shift.
    BeatShift,
}

impl AbnormalMode {
    /// All modes, the default abnormal-class mixture.
    pub const ALL: [AbnormalMode; 6] = [
        AbnormalMode::TWaveInversion,
        AbnormalMode::StDepression,
        AbnormalMode::WideQrs,
        AbnormalMode::NotchedR,
        AbnormalMode::EctopicSpike,
        AbnormalMode::BeatShift,
    ];

    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AbnormalMode::TWaveInversion => "t-inversion",
            AbnormalMode::StDepression => "st-depression",
            AbnormalMode::WideQrs => "wide-qrs",
            AbnormalMode::NotchedR => "notched-r",
            AbnormalMode::EctopicSpike => "ectopic-spike",
            AbnormalMode::BeatShift => "beat-shift",
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct EcgConfig {
    /// Measurement points per beat (ECG200 uses 85).
    pub m: usize,
    /// White-noise standard deviation added to every measurement.
    pub noise_std: f64,
    /// Relative jitter of the wave parameters within the normal class.
    pub normal_jitter: f64,
    /// Relative spread of the per-beat global gain (electrode contact /
    /// amplifier differences; real ECG beats vary noticeably in amplitude).
    pub gain_spread: f64,
    /// Amplitude of the slow sinusoidal baseline wander added to every
    /// beat (respiration artifact).
    pub baseline_wander: f64,
    /// Amplitude of the smooth random time-warp applied to every beat
    /// (`t ↦ t + a·sin(2π(t + φ))`): physiological phase variability from
    /// imperfect beat segmentation. This is what makes point-wise depth
    /// hard on real ECG — steep QRS flanks develop a huge vertical spread.
    pub warp_amp: f64,
    /// Probability that a beat (of either class) carries a benign
    /// electrode glitch: 1–3 consecutive samples offset by
    /// [`EcgConfig::artifact_amp`]-scale noise. Raw-measurement methods
    /// see these as heavy pointwise tails; the paper's smoothing step
    /// removes them — its very rationale (Sec. 2: "the functional
    /// approximation step aims at removing the noise").
    pub artifact_rate: f64,
    /// Typical magnitude of the benign glitches.
    pub artifact_amp: f64,
    /// Probability that an abnormal beat combines two distinct modes —
    /// the paper's *mixed type* outliers (Sec. 1.1).
    pub mixed_rate: f64,
    /// Pathological modes the abnormal class draws from (default: all).
    pub modes: Vec<AbnormalMode>,
}

impl Default for EcgConfig {
    fn default() -> Self {
        EcgConfig {
            m: 85,
            noise_std: 0.04,
            normal_jitter: 0.08,
            gain_spread: 0.05,
            baseline_wander: 0.03,
            warp_amp: 0.005,
            artifact_rate: 0.25,
            artifact_amp: 0.25,
            mixed_rate: 0.5,
            modes: AbnormalMode::ALL.to_vec(),
        }
    }
}

/// The ECG beat simulator.
#[derive(Debug, Clone)]
pub struct EcgSimulator {
    config: EcgConfig,
}

impl EcgSimulator {
    /// Simulator with the default (ECG200-like) configuration.
    pub fn new(config: EcgConfig) -> Result<Self> {
        if config.m < 8 {
            return Err(DatasetError::InvalidParameter(format!(
                "m must be >= 8, got {}",
                config.m
            )));
        }
        if !(config.noise_std >= 0.0 && config.noise_std.is_finite()) {
            return Err(DatasetError::InvalidParameter(
                "noise_std must be >= 0".into(),
            ));
        }
        if !(0.0..0.5).contains(&config.normal_jitter) {
            return Err(DatasetError::InvalidParameter(
                "normal_jitter must be in [0, 0.5)".into(),
            ));
        }
        if !(0.0..1.0).contains(&config.gain_spread) {
            return Err(DatasetError::InvalidParameter(
                "gain_spread must be in [0, 1)".into(),
            ));
        }
        if !(config.baseline_wander >= 0.0 && config.baseline_wander.is_finite()) {
            return Err(DatasetError::InvalidParameter(
                "baseline_wander must be >= 0".into(),
            ));
        }
        if !(0.0..0.1).contains(&config.warp_amp) {
            return Err(DatasetError::InvalidParameter(
                "warp_amp must be in [0, 0.1)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.artifact_rate) {
            return Err(DatasetError::InvalidParameter(
                "artifact_rate must be in [0, 1]".into(),
            ));
        }
        if !(config.artifact_amp >= 0.0 && config.artifact_amp.is_finite()) {
            return Err(DatasetError::InvalidParameter(
                "artifact_amp must be >= 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.mixed_rate) {
            return Err(DatasetError::InvalidParameter(
                "mixed_rate must be in [0, 1]".into(),
            ));
        }
        Ok(EcgSimulator { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &EcgConfig {
        &self.config
    }

    /// Generates `n_normal` normal and `n_abnormal` abnormal beats
    /// (univariate samples, labels `true` = abnormal), reproducibly from
    /// `seed`. The sample order is normals first; shuffle via
    /// [`crate::split::ContaminatedSplit`] when building experiments.
    pub fn generate(
        &self,
        n_normal: usize,
        n_abnormal: usize,
        seed: u64,
    ) -> Result<LabeledDataSet> {
        if n_normal + n_abnormal == 0 {
            return Err(DatasetError::InvalidParameter(
                "need at least one sample".into(),
            ));
        }
        if self.config.modes.is_empty() {
            return Err(DatasetError::InvalidParameter(
                "modes must contain at least one abnormal mode".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = self.grid();
        let mut samples = Vec::with_capacity(n_normal + n_abnormal);
        let mut labels = Vec::with_capacity(n_normal + n_abnormal);
        for _ in 0..n_normal {
            samples.push(self.beat_sample(
                &grid,
                &self.jittered_waves(&mut rng),
                None,
                &mut rng,
            )?);
            labels.push(false);
        }
        let pool = &self.config.modes;
        for _ in 0..n_abnormal {
            let mut waves = self.jittered_waves(&mut rng);
            // one or two distinct pathological modes
            let first = pool[rng.random_range(0..pool.len())];
            let mut modes = vec![first];
            if pool.len() > 1 && rng.random::<f64>() < self.config.mixed_rate {
                loop {
                    let second = pool[rng.random_range(0..pool.len())];
                    if second != first {
                        modes.push(second);
                        break;
                    }
                }
            }
            let mut extra: Vec<Wave> = Vec::new();
            for mode in &modes {
                self.apply_mode(*mode, &mut waves, &mut extra, &mut rng);
            }
            samples.push(self.beat_sample_with_extra(&grid, &waves, &extra, &mut rng)?);
            labels.push(true);
        }
        LabeledDataSet::new(samples, labels)
    }

    /// The measurement grid on `[0, 1]`.
    pub fn grid(&self) -> Vec<f64> {
        let m = self.config.m;
        (0..m).map(|j| j as f64 / (m - 1) as f64).collect()
    }

    fn jittered_waves(&self, rng: &mut StdRng) -> Vec<Wave> {
        let j = self.config.normal_jitter;
        TEMPLATE
            .iter()
            .map(|w| Wave {
                amp: w.amp * (1.0 + j * standard_normal(rng)),
                center: w.center + 0.12 * j * standard_normal(rng),
                width: w.width * (1.0 + j * standard_normal(rng)).max(0.2),
            })
            .collect()
    }

    fn apply_mode(
        &self,
        mode: AbnormalMode,
        waves: &mut [Wave],
        extra: &mut Vec<Wave>,
        rng: &mut StdRng,
    ) {
        match mode {
            AbnormalMode::TWaveInversion => {
                waves[T_WAVE].amp = uniform(rng, -0.2, 0.08);
            }
            AbnormalMode::StDepression => {
                // broad negative plateau between the S and T waves
                extra.push(Wave {
                    amp: -uniform(rng, 0.12, 0.3),
                    center: uniform(rng, 0.5, 0.58),
                    width: uniform(rng, 0.06, 0.1),
                });
            }
            AbnormalMode::WideQrs => {
                for i in 1..=3 {
                    // Q, R, S
                    waves[i].width *= uniform(rng, 2.0, 3.0);
                }
                waves[2].amp *= 0.75;
            }
            AbnormalMode::NotchedR => {
                // split the R wave into two overlapping sub-peaks whose
                // envelope keeps roughly the original height
                let delta = uniform(rng, 0.018, 0.028);
                let r = waves[2];
                waves[2] = Wave {
                    amp: r.amp * uniform(rng, 0.8, 0.9),
                    center: r.center - delta,
                    width: r.width * 0.8,
                };
                extra.push(Wave {
                    amp: r.amp * uniform(rng, 0.75, 0.9),
                    center: r.center + delta,
                    width: r.width * 0.8,
                });
            }
            AbnormalMode::EctopicSpike => {
                extra.push(Wave {
                    amp: random_sign(rng) * uniform(rng, 0.5, 1.0),
                    center: uniform(rng, 0.1, 0.9),
                    width: uniform(rng, 0.006, 0.01),
                });
            }
            AbnormalMode::BeatShift => {
                let shift = random_sign(rng) * uniform(rng, 0.05, 0.09);
                for w in waves.iter_mut() {
                    w.center += shift;
                }
            }
        }
    }

    fn beat_sample(
        &self,
        grid: &[f64],
        waves: &[Wave],
        extra: Option<&[Wave]>,
        rng: &mut StdRng,
    ) -> Result<RawSample> {
        self.beat_sample_with_extra(grid, waves, extra.unwrap_or(&[]), rng)
    }

    fn beat_sample_with_extra(
        &self,
        grid: &[f64],
        waves: &[Wave],
        extra: &[Wave],
        rng: &mut StdRng,
    ) -> Result<RawSample> {
        // per-beat acquisition effects, shared by both classes: a global
        // gain, a slow sinusoidal baseline wander and a smooth time-warp
        let gain = (1.0 + self.config.gain_spread * standard_normal(rng)).max(0.3);
        let wander_amp = self.config.baseline_wander * standard_normal(rng);
        let wander_phase = uniform(rng, 0.0, 1.0);
        let warp_amp = self.config.warp_amp * standard_normal(rng);
        let warp_phase = uniform(rng, 0.0, 1.0);
        let mut y: Vec<f64> = grid
            .iter()
            .map(|&t| {
                let warped = t + warp_amp * (std::f64::consts::TAU * (t + warp_phase)).sin();
                let clean: f64 = waves.iter().chain(extra).map(|w| w.eval(warped)).sum();
                let wander = wander_amp * (std::f64::consts::PI * (t + wander_phase)).sin();
                gain * clean + wander + self.config.noise_std * standard_normal(rng)
            })
            .collect();
        // benign electrode glitch: a short burst of offset samples
        if rng.random::<f64>() < self.config.artifact_rate {
            let len = rng.random_range(1..=3usize).min(y.len());
            let start = rng.random_range(0..y.len() - len + 1);
            let offset = random_sign(rng) * self.config.artifact_amp * uniform(rng, 0.7, 1.3);
            for v in &mut y[start..start + len] {
                *v += offset;
            }
        }
        Ok(RawSample::new(grid.to_vec(), vec![y])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> EcgSimulator {
        EcgSimulator::new(EcgConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(EcgSimulator::new(EcgConfig {
            m: 4,
            ..Default::default()
        })
        .is_err());
        assert!(EcgSimulator::new(EcgConfig {
            noise_std: -0.1,
            ..Default::default()
        })
        .is_err());
        assert!(EcgSimulator::new(EcgConfig {
            normal_jitter: 0.7,
            ..Default::default()
        })
        .is_err());
        assert_eq!(sim().config().m, 85);
    }

    #[test]
    fn shapes_and_labels() {
        let d = sim().generate(20, 10, 42).unwrap();
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_inliers(), 20);
        assert_eq!(d.n_outliers(), 10);
        for s in d.samples() {
            assert_eq!(s.len(), 85);
            assert_eq!(s.dim(), 1);
            assert_eq!(s.domain(), (0.0, 1.0));
        }
        assert!(sim().generate(0, 0, 1).is_err());
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let a = sim().generate(5, 5, 7).unwrap();
        let b = sim().generate(5, 5, 7).unwrap();
        let c = sim().generate(5, 5, 8).unwrap();
        assert_eq!(a.samples()[0].channels, b.samples()[0].channels);
        assert_ne!(a.samples()[0].channels, c.samples()[0].channels);
    }

    #[test]
    fn normal_beats_have_r_peak() {
        let d = sim().generate(10, 0, 3).unwrap();
        let grid = sim().grid();
        for s in d.samples() {
            // R peak near t = 0.4 dominates
            let (peak_idx, peak) = s.channels[0]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, &v)| (i, v))
                .unwrap();
            assert!(peak > 0.5, "R amplitude {peak}");
            let t_peak = grid[peak_idx];
            assert!((t_peak - 0.4).abs() < 0.08, "R position {t_peak}");
        }
    }

    #[test]
    fn abnormal_beats_differ_from_normal_mean() {
        let d = sim().generate(40, 20, 11).unwrap();
        let m = 85;
        // pointwise normal mean
        let mut mean = vec![0.0; m];
        for i in d.inlier_indices() {
            for (j, v) in d.samples()[i].channels[0].iter().enumerate() {
                mean[j] += v;
            }
        }
        mean.iter_mut().for_each(|v| *v /= 40.0);
        let rmse = |y: &[f64]| {
            (y.iter()
                .zip(&mean)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / m as f64)
                .sqrt()
        };
        let mean_inlier_rmse: f64 = d
            .inlier_indices()
            .iter()
            .map(|&i| rmse(&d.samples()[i].channels[0]))
            .sum::<f64>()
            / 40.0;
        let mean_outlier_rmse: f64 = d
            .outlier_indices()
            .iter()
            .map(|&i| rmse(&d.samples()[i].channels[0]))
            .sum::<f64>()
            / 20.0;
        assert!(
            mean_outlier_rmse > mean_inlier_rmse * 1.5,
            "outliers {mean_outlier_rmse} vs inliers {mean_inlier_rmse}"
        );
    }

    /// EcgConfig with every stochastic acquisition knob disabled.
    fn silent_config() -> EcgConfig {
        EcgConfig {
            noise_std: 0.0,
            normal_jitter: 0.0,
            gain_spread: 0.0,
            baseline_wander: 0.0,
            warp_amp: 0.0,
            artifact_rate: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn noise_free_configuration() {
        let s = EcgSimulator::new(silent_config()).unwrap();
        let d = s.generate(2, 0, 5).unwrap();
        // with every stochastic knob at zero, all normals are identical
        assert_eq!(d.samples()[0].channels, d.samples()[1].channels);
    }

    #[test]
    fn acquisition_knobs_validated() {
        let bad = |f: fn(&mut EcgConfig)| {
            let mut c = EcgConfig::default();
            f(&mut c);
            EcgSimulator::new(c).is_err()
        };
        assert!(bad(|c| c.gain_spread = 1.5));
        assert!(bad(|c| c.baseline_wander = -0.1));
        assert!(bad(|c| c.warp_amp = 0.5));
        assert!(bad(|c| c.artifact_rate = 1.5));
        assert!(bad(|c| c.artifact_amp = f64::NAN));
        assert!(bad(|c| c.mixed_rate = 2.0));
        // empty modes only fails at generate() time
        let c = EcgConfig {
            modes: vec![],
            ..Default::default()
        };
        assert!(EcgSimulator::new(c).unwrap().generate(1, 1, 0).is_err());
    }

    #[test]
    fn single_mode_restriction_respected() {
        // with only the ectopic-spike mode, every abnormal beat contains a
        // narrow large deviation from the clean normal beat
        let mut cfg = silent_config();
        cfg.mixed_rate = 0.0;
        cfg.modes = vec![AbnormalMode::EctopicSpike];
        let s = EcgSimulator::new(cfg).unwrap();
        let d = s.generate(1, 5, 9).unwrap();
        let normal = &d.samples()[0].channels[0];
        for i in d.outlier_indices() {
            let abn = &d.samples()[i].channels[0];
            let max_dev = abn
                .iter()
                .zip(normal)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_dev > 0.3,
                "spike missing in abnormal beat {i}: {max_dev}"
            );
        }
    }

    #[test]
    fn mode_names_unique() {
        let names: std::collections::HashSet<_> =
            AbnormalMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), AbnormalMode::ALL.len());
    }

    #[test]
    fn augments_to_bivariate_like_paper() {
        let d = sim().generate(5, 5, 2).unwrap();
        let mfd = d.augment_with(0, |y| y * y).unwrap();
        assert!(mfd.samples().iter().all(|s| s.dim() == 2));
    }
}
