//! Small RNG helpers shared by the generators.

use rand::rngs::StdRng;
use rand::RngExt;

/// Standard normal variate via Box–Muller.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Uniform variate in `[lo, hi)`.
pub(crate) fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + rng.random::<f64>() * (hi - lo)
}

/// Random sign (±1) with equal probability.
pub(crate) fn random_sign(rng: &mut StdRng) -> f64 {
    if rng.random::<bool>() {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn signs_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let pos = (0..1000).filter(|_| random_sign(&mut rng) > 0.0).count();
        assert!((300..700).contains(&pos), "{pos}");
    }
}
