//! Property-based tests for the depth-based scorers.

use mfod_depth::aggregate::{IntegratedDepth, ModifiedBandDepth};
use mfod_depth::projection::{
    projection_outlyingness, projection_outlyingness_against, univariate_outlyingness,
    ProjectionConfig,
};
use mfod_depth::{DirOut, FunctionalOutlierScorer, Funta, GriddedDataSet};
use mfod_linalg::Matrix;
use proptest::prelude::*;

/// A univariate dataset of n smooth-ish curves on m grid points.
fn curves(n: usize, m: usize) -> impl Strategy<Value = GriddedDataSet> {
    prop::collection::vec((0.2..2.0f64, -1.0..1.0f64, -0.5..0.5f64), n).prop_map(move |params| {
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let values: Vec<Vec<f64>> = params
            .iter()
            .map(|&(a, b, c)| {
                grid.iter()
                    .map(|&t| a * (std::f64::consts::TAU * t).sin() + b * t + c)
                    .collect()
            })
            .collect();
        GriddedDataSet::from_univariate(grid, values).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn funta_scores_bounded(data in curves(8, 20)) {
        let s = Funta::new().score(&data).unwrap();
        prop_assert_eq!(s.len(), 8);
        prop_assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn funta_translation_of_all_curves_is_invariant(data in curves(6, 15), shift in -5.0..5.0f64) {
        // translating EVERY curve by the same constant changes no crossing
        let s1 = Funta::new().score(&data).unwrap();
        let shifted: Vec<Matrix> = data
            .samples()
            .iter()
            .map(|s| {
                let mut m = s.clone();
                for v in m.as_mut_slice() {
                    *v += shift;
                }
                m
            })
            .collect();
        let data2 = GriddedDataSet::new(data.grid().to_vec(), shifted).unwrap();
        let s2 = Funta::new().score(&data2).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn dirout_scores_nonnegative_finite(data in curves(8, 20)) {
        if let Ok(scores) = DirOut::new().decompose(&data) {
            prop_assert!(scores.fo.iter().all(|&v| v >= 0.0 && v.is_finite()));
            prop_assert!(scores.vo.iter().all(|&v| v >= -1e-12 && v.is_finite()));
            // FO = ‖MO‖² + VO componentwise
            for i in 0..8 {
                let mo_sq: f64 = scores.mo[i].iter().map(|v| v * v).sum();
                prop_assert!((scores.fo[i] - (mo_sq + scores.vo[i])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reference_scoring_consistent_with_self(data in curves(10, 15)) {
        // scoring the reference against itself equals joint self-scoring
        if let (Ok(joint), Ok(against)) = (
            DirOut::new().score(&data),
            DirOut::new().score_against(&data, &data),
        ) {
            for (a, b) in joint.iter().zip(&against) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn univariate_projection_outlyingness_scale_invariant(
        pts in prop::collection::vec(-10.0..10.0f64, 7),
        scale in 0.1..10.0f64,
    ) {
        if let Ok(o1) = univariate_outlyingness(&pts) {
            let scaled: Vec<f64> = pts.iter().map(|x| x * scale).collect();
            let o2 = univariate_outlyingness(&scaled).unwrap();
            for (a, b) in o1.iter().zip(&o2) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn projection_against_self_matches_joint(rows in prop::collection::vec(
        prop::collection::vec(-5.0..5.0f64, 2), 9)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig::default();
        if let Ok(joint) = projection_outlyingness(&cloud, &cfg) {
            let against = projection_outlyingness_against(&cloud, &cloud, &cfg).unwrap();
            for (a, b) in joint.iter().zip(&against) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mbd_outlyingness_in_unit_interval(data in curves(9, 12)) {
        let s = ModifiedBandDepth.score(&data).unwrap();
        prop_assert!(s.iter().all(|&v| (-1e-12..=1.0).contains(&v)));
    }

    #[test]
    fn integrated_depth_orderings(data in curves(8, 15)) {
        // infimum depth <= integral depth pointwise implies
        // infimum outlyingness >= integral outlyingness
        if let (Ok(int), Ok(inf)) = (
            IntegratedDepth::integral().score(&data),
            IntegratedDepth::infimum().score(&data),
        ) {
            for (a, b) in int.iter().zip(&inf) {
                prop_assert!(b + 1e-9 >= *a, "infimum {b} < integral {a}");
            }
        }
    }
}
