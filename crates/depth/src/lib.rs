//! # mfod-depth
//!
//! Depth-based functional outlier detection — the state-of-the-art
//! *baselines* the paper compares against (Sec. 1.2 and 4):
//!
//! * [`funta::Funta`] — the angle-based functional pseudo-depth of Kuhnt &
//!   Rehage (2016), sensitive to persistent *shape* outliers;
//! * [`dirout::DirOut`] — the directional outlyingness of Dai & Genton
//!   (2019), whose mean/variation decomposition (`MO`, `VO`, combined `FO`)
//!   detects isolated as well as persistent outliers;
//! * [`aggregate`] — the classic "pointwise depth + aggregation" recipe
//!   (integral à la Fraiman–Muniz, or the infimum fix for issue (2) of the
//!   paper) and the fast modified band depth;
//! * [`projection`] — univariate and random-direction projection
//!   depth/outlyingness primitives shared by the above.
//!
//! All scorers implement [`FunctionalOutlierScorer`] over a
//! [`GriddedDataSet`] (samples evaluated on a common grid) and return
//! scores oriented **higher = more outlying**, so AUCs are directly
//! comparable with the detector-based pipeline.

// Index-based loops are used deliberately in the numeric kernels: the
// loop index mirrors the textbook formulas being implemented.
#![allow(clippy::needless_range_loop)]

pub mod aggregate;
pub mod dataset;
pub mod dirout;
pub mod error;
pub mod funta;
pub mod projection;
pub mod snapshot;

pub use dataset::GriddedDataSet;
pub use dirout::{DirOut, DirOutScores};
pub use error::DepthError;
pub use funta::Funta;
pub use snapshot::DepthScorerSnapshot;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, DepthError>;

/// A method that scores every sample of a functional dataset jointly
/// (depth-style methods are relative to the whole sample).
pub trait FunctionalOutlierScorer: Send + Sync {
    /// Identifier used in experiment reports.
    fn name(&self) -> &'static str;

    /// Outlyingness score per sample; **higher = more outlying**.
    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>>;

    /// Scores each `queries` sample against the `reference` sample — the
    /// train/test protocol of the paper's Fig. 3, where a method is "fit"
    /// on the (possibly contaminated) training set and evaluated on test
    /// samples.
    ///
    /// The default implementation scores the concatenated
    /// `reference ∪ queries` dataset jointly and returns the query part;
    /// [`Funta`] and [`DirOut`] override it with true reference-only
    /// statistics so that training contamination affects them exactly as it
    /// affects the detector-based pipelines.
    fn score_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<Vec<f64>> {
        let joint = reference.concat(queries)?;
        let scores = self.score(&joint)?;
        Ok(scores[reference.n()..].to_vec())
    }

    /// The scorer's persistable configuration, when it supports
    /// snapshots. Defaults to `None` so custom scorers stay valid;
    /// [`Funta`] and [`DirOut`] override it.
    fn snapshot(&self) -> Option<DepthScorerSnapshot> {
        None
    }
}
