//! Projection-depth primitives: Stahel–Donoho outlyingness in 1-D (exact)
//! and in `R^p` via random directions, as used by the directional
//! outlyingness baseline (Zuo 2003; Dai & Genton 2019).

use crate::error::DepthError;
use crate::Result;
use mfod_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Exact univariate Stahel–Donoho outlyingness `|x − med| / MAD` of each
/// entry of `points` w.r.t. the whole set.
///
/// Errors with [`DepthError::DegenerateScale`] when the MAD is zero.
pub fn univariate_outlyingness(points: &[f64]) -> Result<Vec<f64>> {
    if points.is_empty() {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    let med = vector::median(points);
    let mad = vector::mad_raw(points);
    if mad <= 0.0 || !mad.is_finite() {
        return Err(DepthError::DegenerateScale { grid_index: 0 });
    }
    Ok(points.iter().map(|&x| (x - med).abs() / mad).collect())
}

/// Configuration for random-direction projection outlyingness in `R^p`.
#[derive(Debug, Clone)]
pub struct ProjectionConfig {
    /// Number of random unit directions (coordinate axes are always
    /// included in addition).
    pub n_directions: usize,
    /// RNG seed for reproducible directions.
    pub seed: u64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        ProjectionConfig {
            n_directions: 128,
            seed: 0x5EED_D1CE,
        }
    }
}

/// Approximates the projection outlyingness
/// `O(x) = sup_u |uᵀx − med(uᵀZ)| / MAD(uᵀZ)` of every row of `cloud`
/// (an `n x p` matrix) by maximizing over random unit directions plus the
/// `p` coordinate axes.
///
/// For `p = 1` the exact univariate computation is used. Degenerate
/// directions (zero MAD) are skipped; if *every* direction degenerates the
/// cloud is concentrated and an error is returned.
pub fn projection_outlyingness(cloud: &Matrix, config: &ProjectionConfig) -> Result<Vec<f64>> {
    let n = cloud.nrows();
    let p = cloud.ncols();
    if n == 0 {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    if p == 1 {
        return univariate_outlyingness(&cloud.col(0));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = vec![0.0; n];
    let mut any_valid = false;
    let mut proj = vec![0.0; n];
    let mut dir = vec![0.0; p];
    let total = config.n_directions + p;
    for d in 0..total {
        if d < p {
            // coordinate axes first: cheap and often informative
            dir.fill(0.0);
            dir[d] = 1.0;
        } else {
            // isotropic Gaussian direction, normalized
            for v in dir.iter_mut() {
                *v = standard_normal(&mut rng);
            }
            if vector::normalize(&mut dir, 1e-12) <= 1e-12 {
                continue;
            }
        }
        for (i, pr) in proj.iter_mut().enumerate() {
            *pr = vector::dot(cloud.row(i), &dir);
        }
        let med = vector::median(&proj);
        let mad = vector::mad_raw(&proj);
        if mad <= 1e-300 || !mad.is_finite() {
            continue;
        }
        any_valid = true;
        for (o, &pr) in out.iter_mut().zip(proj.iter()) {
            let v = (pr - med).abs() / mad;
            if v > *o {
                *o = v;
            }
        }
    }
    if !any_valid {
        return Err(DepthError::DegenerateScale { grid_index: 0 });
    }
    Ok(out)
}

/// Approximates the projection outlyingness of each row of `queries`
/// **with respect to the `reference` cloud**: the median and MAD of every
/// direction's projections are estimated from `reference` only, so query
/// points do not influence the location/scale estimates (the train/test
/// protocol).
pub fn projection_outlyingness_against(
    reference: &Matrix,
    queries: &Matrix,
    config: &ProjectionConfig,
) -> Result<Vec<f64>> {
    let n_ref = reference.nrows();
    let n_q = queries.nrows();
    let p = reference.ncols();
    if n_ref == 0 || n_q == 0 {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    if queries.ncols() != p {
        return Err(DepthError::ShapeMismatch(format!(
            "query dimension {} != reference dimension {p}",
            queries.ncols()
        )));
    }
    if p == 1 {
        let refs = reference.col(0);
        let med = vector::median(&refs);
        let mad = vector::mad_raw(&refs);
        if mad <= 0.0 || !mad.is_finite() {
            return Err(DepthError::DegenerateScale { grid_index: 0 });
        }
        return Ok(queries
            .col(0)
            .iter()
            .map(|&x| (x - med).abs() / mad)
            .collect());
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = vec![0.0; n_q];
    let mut any_valid = false;
    let mut proj_ref = vec![0.0; n_ref];
    let mut dir = vec![0.0; p];
    let total = config.n_directions + p;
    for d in 0..total {
        if d < p {
            dir.fill(0.0);
            dir[d] = 1.0;
        } else {
            for v in dir.iter_mut() {
                *v = standard_normal(&mut rng);
            }
            if vector::normalize(&mut dir, 1e-12) <= 1e-12 {
                continue;
            }
        }
        for (pr, i) in proj_ref.iter_mut().zip(0..n_ref) {
            *pr = vector::dot(reference.row(i), &dir);
        }
        let med = vector::median(&proj_ref);
        let mad = vector::mad_raw(&proj_ref);
        if mad <= 1e-300 || !mad.is_finite() {
            continue;
        }
        any_valid = true;
        for (i, o) in out.iter_mut().enumerate() {
            let v = (vector::dot(queries.row(i), &dir) - med).abs() / mad;
            if v > *o {
                *o = v;
            }
        }
    }
    if !any_valid {
        return Err(DepthError::DegenerateScale { grid_index: 0 });
    }
    Ok(out)
}

/// Projection depth `PD(x) = 1 / (1 + O(x))` for every row of `cloud`.
pub fn projection_depth(cloud: &Matrix, config: &ProjectionConfig) -> Result<Vec<f64>> {
    Ok(projection_outlyingness(cloud, config)?
        .into_iter()
        .map(|o| 1.0 / (1.0 + o))
        .collect())
}

/// Standard normal variate via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform source only).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Coordinate-wise median of the rows of `cloud` — the center estimate used
/// for the direction vector of the directional outlyingness.
pub fn coordinate_median(cloud: &Matrix) -> Vec<f64> {
    (0..cloud.ncols())
        .map(|k| vector::median(&cloud.col(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_known_values() {
        // points: 0..=4, med = 2, MAD = 1
        let pts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let o = univariate_outlyingness(&pts).unwrap();
        assert_eq!(o, vec![2.0, 1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn univariate_flags_extreme_point() {
        let mut pts = vec![0.0, 0.1, -0.1, 0.05, -0.05, 0.02];
        pts.push(10.0);
        let o = univariate_outlyingness(&pts).unwrap();
        let max_idx = o
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 6);
    }

    #[test]
    fn univariate_degenerate_scale() {
        assert!(matches!(
            univariate_outlyingness(&[1.0, 1.0, 1.0, 5.0]),
            Err(DepthError::DegenerateScale { .. })
        ));
        assert!(univariate_outlyingness(&[]).is_err());
    }

    #[test]
    fn multivariate_center_is_least_outlying() {
        // cross-shaped cloud around the origin plus one extreme point
        let rows: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
            vec![0.5, 0.5],
            vec![-0.5, 0.5],
            vec![0.5, -0.5],
            vec![-0.5, -0.5],
            vec![8.0, 8.0],
        ];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let o = projection_outlyingness(&cloud, &ProjectionConfig::default()).unwrap();
        // origin must have the smallest outlyingness, the far point the largest
        let min_idx = o
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let max_idx = o
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 0, "{o:?}");
        assert_eq!(max_idx, 9, "{o:?}");
    }

    #[test]
    fn depth_is_monotone_in_outlyingness() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i as f64).sin()]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig::default();
        let o = projection_outlyingness(&cloud, &cfg).unwrap();
        let d = projection_depth(&cloud, &cfg).unwrap();
        for i in 0..10 {
            assert!((d[i] - 1.0 / (1.0 + o[i])).abs() < 1e-12);
            assert!(d[i] > 0.0 && d[i] <= 1.0);
        }
    }

    #[test]
    fn reproducible_with_same_seed() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| {
                vec![
                    (i as f64 * 0.7).sin(),
                    (i as f64 * 1.3).cos(),
                    i as f64 * 0.1,
                ]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig {
            n_directions: 64,
            seed: 42,
        };
        let o1 = projection_outlyingness(&cloud, &cfg).unwrap();
        let o2 = projection_outlyingness(&cloud, &cfg).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn degenerate_cloud_errors() {
        let cloud = Matrix::filled(6, 2, 3.0); // all points identical
        assert!(matches!(
            projection_outlyingness(&cloud, &ProjectionConfig::default()),
            Err(DepthError::DegenerateScale { .. })
        ));
    }

    #[test]
    fn coordinate_median_centers() {
        let cloud = Matrix::from_rows(&[&[0.0, 10.0], &[1.0, 20.0], &[2.0, 30.0]]);
        assert_eq!(coordinate_median(&cloud), vec![1.0, 20.0]);
    }

    #[test]
    fn affine_invariance_of_univariate() {
        // O is invariant to shift and positive scaling.
        let pts = [0.0, 1.0, 2.0, 3.0, 10.0];
        let o1 = univariate_outlyingness(&pts).unwrap();
        let scaled: Vec<f64> = pts.iter().map(|x| 5.0 * x - 7.0).collect();
        let o2 = univariate_outlyingness(&scaled).unwrap();
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
