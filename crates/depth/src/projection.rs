//! Projection-depth primitives: Stahel–Donoho outlyingness in 1-D (exact)
//! and in `R^p` via random directions, as used by the directional
//! outlyingness baseline (Zuo 2003; Dai & Genton 2019).
//!
//! The random-direction approximation is the fit-side hot path of the
//! Dir.out baseline (one call per grid point), so the per-direction work
//! — project the cloud, take the median and MAD, fold the normalized
//! residuals into the running maximum — fans out across the worker pool
//! of [`mfod_linalg::par`]. The RNG-drawn direction stream is generated
//! **sequentially before** the fan-out, and the per-direction maxima are
//! folded back **in direction order**, so the scores are bit-for-bit
//! identical to the plain sequential loop at any thread count.

use crate::error::DepthError;
use crate::Result;
use mfod_linalg::{par, vector, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Exact univariate Stahel–Donoho outlyingness `|x − med| / MAD` of each
/// entry of `points` w.r.t. the whole set.
///
/// Errors with [`DepthError::DegenerateScale`] when the MAD is zero.
pub fn univariate_outlyingness(points: &[f64]) -> Result<Vec<f64>> {
    if points.is_empty() {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    let med = vector::median(points);
    let mad = vector::mad_raw(points);
    if mad <= 0.0 || !mad.is_finite() {
        return Err(DepthError::DegenerateScale {
            context: format!("MAD of the {}-point univariate set is zero", points.len()),
        });
    }
    Ok(points.iter().map(|&x| (x - med).abs() / mad).collect())
}

/// Configuration for random-direction projection outlyingness in `R^p`.
#[derive(Debug, Clone)]
pub struct ProjectionConfig {
    /// Number of random unit directions (coordinate axes are always
    /// included in addition).
    pub n_directions: usize,
    /// RNG seed for reproducible directions.
    pub seed: u64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        ProjectionConfig {
            n_directions: 128,
            seed: 0x5EED_D1CE,
        }
    }
}

/// Projection-outlyingness scores together with the direction budget that
/// produced them.
///
/// Degenerate directions (zero MAD of the projected reference cloud, or a
/// random draw too short to normalize) are skipped silently by the score
/// computation; this bookkeeping lets callers observe when the *effective*
/// direction budget collapses well below [`ProjectionConfig::n_directions`]
/// — the approximation quality degrades long before every direction dies
/// and the computation turns into a hard error.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionOutcome {
    /// Outlyingness per scored point; **higher = more outlying**.
    pub scores: Vec<f64>,
    /// Directions that contributed to the supremum (positive finite MAD).
    pub used_directions: usize,
    /// Directions skipped because they degenerated.
    pub degenerate_directions: usize,
}

/// Approximates the projection outlyingness
/// `O(x) = sup_u |uᵀx − med(uᵀZ)| / MAD(uᵀZ)` of every row of `cloud`
/// (an `n x p` matrix) by maximizing over random unit directions plus the
/// `p` coordinate axes.
///
/// For `p = 1` the exact univariate computation is used. Degenerate
/// directions (zero MAD) are skipped; if *every* direction degenerates the
/// cloud is concentrated and [`DepthError::DegenerateDirections`] is
/// returned. Runs on the global worker pool; see
/// [`projection_outlyingness_full`] for the direction diagnostics and
/// [`projection_outlyingness_on`] for an explicit pool.
pub fn projection_outlyingness(cloud: &Matrix, config: &ProjectionConfig) -> Result<Vec<f64>> {
    projection_outlyingness_full(cloud, config).map(|outcome| outcome.scores)
}

/// [`projection_outlyingness`] with the degenerate-direction diagnostics.
pub fn projection_outlyingness_full(
    cloud: &Matrix,
    config: &ProjectionConfig,
) -> Result<ProjectionOutcome> {
    projection_outlyingness_on(par::global(), cloud, config)
}

/// [`projection_outlyingness_full`] on an explicit worker pool. The output
/// is bit-for-bit identical for every pool size ([`par::Pool::with_threads`]
/// with 1 thread reproduces the sequential loop exactly).
pub fn projection_outlyingness_on(
    pool: &par::Pool,
    cloud: &Matrix,
    config: &ProjectionConfig,
) -> Result<ProjectionOutcome> {
    if cloud.nrows() == 0 {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    if cloud.ncols() == 1 {
        return Ok(ProjectionOutcome {
            scores: univariate_outlyingness(&cloud.col(0))?,
            used_directions: 1,
            degenerate_directions: 0,
        });
    }
    outlyingness_over_directions(pool, cloud, None, config)
}

/// Approximates the projection outlyingness of each row of `queries`
/// **with respect to the `reference` cloud**: the median and MAD of every
/// direction's projections are estimated from `reference` only, so query
/// points do not influence the location/scale estimates (the train/test
/// protocol). Runs on the global worker pool.
pub fn projection_outlyingness_against(
    reference: &Matrix,
    queries: &Matrix,
    config: &ProjectionConfig,
) -> Result<Vec<f64>> {
    projection_outlyingness_against_full(reference, queries, config).map(|outcome| outcome.scores)
}

/// [`projection_outlyingness_against`] with the degenerate-direction
/// diagnostics.
pub fn projection_outlyingness_against_full(
    reference: &Matrix,
    queries: &Matrix,
    config: &ProjectionConfig,
) -> Result<ProjectionOutcome> {
    projection_outlyingness_against_on(par::global(), reference, queries, config)
}

/// [`projection_outlyingness_against_full`] on an explicit worker pool.
pub fn projection_outlyingness_against_on(
    pool: &par::Pool,
    reference: &Matrix,
    queries: &Matrix,
    config: &ProjectionConfig,
) -> Result<ProjectionOutcome> {
    let n_ref = reference.nrows();
    let p = reference.ncols();
    if n_ref == 0 || queries.nrows() == 0 {
        return Err(DepthError::TooFewSamples { got: 0, need: 1 });
    }
    if queries.ncols() != p {
        return Err(DepthError::ShapeMismatch(format!(
            "query dimension {} != reference dimension {p}",
            queries.ncols()
        )));
    }
    if p == 1 {
        let refs = reference.col(0);
        let med = vector::median(&refs);
        let mad = vector::mad_raw(&refs);
        if mad <= 0.0 || !mad.is_finite() {
            return Err(DepthError::DegenerateScale {
                context: format!("MAD of the {n_ref}-point univariate reference set is zero"),
            });
        }
        return Ok(ProjectionOutcome {
            scores: queries
                .col(0)
                .iter()
                .map(|&x| (x - med).abs() / mad)
                .collect(),
            used_directions: 1,
            degenerate_directions: 0,
        });
    }
    outlyingness_over_directions(pool, reference, Some(queries), config)
}

/// Shared direction loop behind the joint and against variants: location
/// and scale come from `reference`; scores are computed for `queries`
/// when given, else for `reference` itself.
///
/// Stage 1 draws the direction stream sequentially (identical RNG
/// consumption to the historical sequential loop), stage 2 fans the
/// project + median + MAD work per direction across `pool`, stage 3 folds
/// the per-direction residuals into the supremum in direction order.
fn outlyingness_over_directions(
    pool: &par::Pool,
    reference: &Matrix,
    queries: Option<&Matrix>,
    config: &ProjectionConfig,
) -> Result<ProjectionOutcome> {
    let n_ref = reference.nrows();
    let p = reference.ncols();
    let n_out = queries.map_or(n_ref, Matrix::nrows);
    let total = config.n_directions + p;

    // Stage 1 (sequential): the direction stream. Axes first, then random
    // unit vectors; draws that fail to normalize are counted as degenerate
    // but still consume the same RNG values they always did.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dirs: Vec<Vec<f64>> = Vec::with_capacity(total);
    let mut degenerate = 0usize;
    let mut dir = vec![0.0; p];
    for d in 0..total {
        if d < p {
            // coordinate axes first: cheap and often informative
            dir.fill(0.0);
            dir[d] = 1.0;
        } else {
            // isotropic Gaussian direction, normalized
            for v in dir.iter_mut() {
                *v = standard_normal(&mut rng);
            }
            if vector::normalize(&mut dir, 1e-12) <= 1e-12 {
                degenerate += 1;
                continue;
            }
        }
        dirs.push(dir.clone());
    }

    // Stage 2 (parallel): contiguous blocks of directions, each folding
    // its residuals into a per-block partial supremum as it goes, so the
    // transient memory is O(blocks × n) rather than O(directions × n).
    // The block count follows the pool's stealing granularity
    // (`task_chunks`, i.e. split-factor × threads) instead of the thread
    // count, so a block whose directions all degenerate early cannot
    // leave its thread idle while another grinds through expensive ones —
    // idle threads steal the remaining blocks.
    let n_dirs = dirs.len();
    let n_blocks = pool.task_chunks(n_dirs).max(1);
    let (base, extra) = (n_dirs / n_blocks, n_dirs % n_blocks);
    let mut bounds = Vec::with_capacity(n_blocks + 1);
    let mut start = 0usize;
    bounds.push(0);
    for b in 0..n_blocks {
        start += base + usize::from(b < extra);
        bounds.push(start);
    }
    let blocks: Vec<(Vec<f64>, usize, usize)> = pool.map(n_blocks, |b| {
        let mut partial = vec![0.0; n_out];
        let mut used = 0usize;
        let mut block_degenerate = 0usize;
        let mut proj_ref = vec![0.0; n_ref];
        for u in &dirs[bounds[b]..bounds[b + 1]] {
            for (i, pr) in proj_ref.iter_mut().enumerate() {
                *pr = vector::dot(reference.row(i), u);
            }
            let med = vector::median(&proj_ref);
            let mad = vector::mad_raw(&proj_ref);
            if mad <= 1e-300 || !mad.is_finite() {
                block_degenerate += 1;
                continue;
            }
            used += 1;
            match queries {
                None => {
                    for (o, &pr) in partial.iter_mut().zip(proj_ref.iter()) {
                        let v = (pr - med).abs() / mad;
                        if v > *o {
                            *o = v;
                        }
                    }
                }
                Some(q) => {
                    for (i, o) in partial.iter_mut().enumerate() {
                        let v = (vector::dot(q.row(i), u) - med).abs() / mad;
                        if v > *o {
                            *o = v;
                        }
                    }
                }
            }
        }
        (partial, used, block_degenerate)
    });

    // Stage 3 (sequential): merge the block partials in block (= direction)
    // order. The strictly-greater max update over the nonnegative finite
    // residuals is associative, so the blocked fold is bit-for-bit
    // identical to the one-direction-at-a-time sequential loop.
    let mut out = vec![0.0; n_out];
    let mut used = 0usize;
    for (partial, block_used, block_degenerate) in blocks {
        used += block_used;
        degenerate += block_degenerate;
        for (o, &v) in out.iter_mut().zip(partial.iter()) {
            if v > *o {
                *o = v;
            }
        }
    }
    if used == 0 {
        return Err(DepthError::DegenerateDirections { attempted: total });
    }
    Ok(ProjectionOutcome {
        scores: out,
        used_directions: used,
        degenerate_directions: degenerate,
    })
}

/// Projection depth `PD(x) = 1 / (1 + O(x))` for every row of `cloud`.
pub fn projection_depth(cloud: &Matrix, config: &ProjectionConfig) -> Result<Vec<f64>> {
    Ok(projection_outlyingness(cloud, config)?
        .into_iter()
        .map(|o| 1.0 / (1.0 + o))
        .collect())
}

/// Standard normal variate via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform source only).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Coordinate-wise median of the rows of `cloud` — the center estimate used
/// for the direction vector of the directional outlyingness.
pub fn coordinate_median(cloud: &Matrix) -> Vec<f64> {
    (0..cloud.ncols())
        .map(|k| vector::median(&cloud.col(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_known_values() {
        // points: 0..=4, med = 2, MAD = 1
        let pts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let o = univariate_outlyingness(&pts).unwrap();
        assert_eq!(o, vec![2.0, 1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn univariate_flags_extreme_point() {
        let mut pts = vec![0.0, 0.1, -0.1, 0.05, -0.05, 0.02];
        pts.push(10.0);
        let o = univariate_outlyingness(&pts).unwrap();
        let max_idx = o
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 6);
    }

    #[test]
    fn univariate_degenerate_scale() {
        assert!(matches!(
            univariate_outlyingness(&[1.0, 1.0, 1.0, 5.0]),
            Err(DepthError::DegenerateScale { .. })
        ));
        assert!(univariate_outlyingness(&[]).is_err());
    }

    #[test]
    fn multivariate_center_is_least_outlying() {
        // cross-shaped cloud around the origin plus one extreme point
        let rows: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
            vec![0.5, 0.5],
            vec![-0.5, 0.5],
            vec![0.5, -0.5],
            vec![-0.5, -0.5],
            vec![8.0, 8.0],
        ];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let o = projection_outlyingness(&cloud, &ProjectionConfig::default()).unwrap();
        // origin must have the smallest outlyingness, the far point the largest
        let min_idx = o
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let max_idx = o
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 0, "{o:?}");
        assert_eq!(max_idx, 9, "{o:?}");
    }

    #[test]
    fn depth_is_monotone_in_outlyingness() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i as f64).sin()]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig::default();
        let o = projection_outlyingness(&cloud, &cfg).unwrap();
        let d = projection_depth(&cloud, &cfg).unwrap();
        for i in 0..10 {
            assert!((d[i] - 1.0 / (1.0 + o[i])).abs() < 1e-12);
            assert!(d[i] > 0.0 && d[i] <= 1.0);
        }
    }

    #[test]
    fn reproducible_with_same_seed() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| {
                vec![
                    (i as f64 * 0.7).sin(),
                    (i as f64 * 1.3).cos(),
                    i as f64 * 0.1,
                ]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig {
            n_directions: 64,
            seed: 42,
        };
        let o1 = projection_outlyingness(&cloud, &cfg).unwrap();
        let o2 = projection_outlyingness(&cloud, &cfg).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn pool_sizes_agree_bit_for_bit() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    (i as f64 * 0.31).sin(),
                    (i as f64 * 0.77).cos(),
                    (i as f64 * 0.13).tan().atan(),
                    i as f64 * 0.05,
                ]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let queries = Matrix::from_rows(&refs[..7]);
        let cfg = ProjectionConfig {
            n_directions: 48,
            seed: 9,
        };
        let p1 = par::Pool::with_threads(1);
        let p8 = par::Pool::with_threads(8);
        let seq = projection_outlyingness_on(&p1, &cloud, &cfg).unwrap();
        let par8 = projection_outlyingness_on(&p8, &cloud, &cfg).unwrap();
        let global = projection_outlyingness_full(&cloud, &cfg).unwrap();
        assert_eq!(seq, par8);
        assert_eq!(seq, global);
        for (a, b) in seq.scores.iter().zip(&par8.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let seq_q = projection_outlyingness_against_on(&p1, &cloud, &queries, &cfg).unwrap();
        let par_q = projection_outlyingness_against_on(&p8, &cloud, &queries, &cfg).unwrap();
        assert_eq!(seq_q, par_q);
        assert_eq!(
            seq_q,
            projection_outlyingness_against_full(&cloud, &queries, &cfg).unwrap()
        );
    }

    #[test]
    fn direction_budget_is_accounted() {
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, (i as f64).cos()]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cloud = Matrix::from_rows(&refs);
        let cfg = ProjectionConfig {
            n_directions: 32,
            seed: 5,
        };
        let outcome = projection_outlyingness_full(&cloud, &cfg).unwrap();
        // a generic cloud degenerates along no direction
        assert_eq!(outcome.used_directions, cfg.n_directions + 2);
        assert_eq!(outcome.degenerate_directions, 0);

        // A rank-1 cloud (all points on the line y = x) keeps only the
        // directions with a component along the line: the two axes survive,
        // but any direction orthogonal to (1, 1) degenerates. With random
        // directions almost surely none is exactly orthogonal, so this
        // cloud still uses every direction — instead, collapse one
        // coordinate to force axis-aligned degeneracy.
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 3.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let flat = Matrix::from_rows(&refs);
        let outcome = projection_outlyingness_full(&flat, &cfg).unwrap();
        // the y axis projects every point to 3.0: zero MAD, degenerate
        assert!(outcome.degenerate_directions >= 1, "{outcome:?}");
        assert_eq!(
            outcome.used_directions + outcome.degenerate_directions,
            cfg.n_directions + 2
        );
    }

    #[test]
    fn degenerate_cloud_errors() {
        let cloud = Matrix::filled(6, 2, 3.0); // all points identical
        let err = projection_outlyingness(&cloud, &ProjectionConfig::default()).unwrap_err();
        assert!(
            matches!(err, DepthError::DegenerateDirections { attempted } if attempted == 130),
            "{err:?}"
        );
    }

    #[test]
    fn coordinate_median_centers() {
        let cloud = Matrix::from_rows(&[&[0.0, 10.0], &[1.0, 20.0], &[2.0, 30.0]]);
        assert_eq!(coordinate_median(&cloud), vec![1.0, 20.0]);
    }

    #[test]
    fn affine_invariance_of_univariate() {
        // O is invariant to shift and positive scaling.
        let pts = [0.0, 1.0, 2.0, 3.0, 10.0];
        let o1 = univariate_outlyingness(&pts).unwrap();
        let scaled: Vec<f64> = pts.iter().map(|x| 5.0 * x - 7.0).collect();
        let o2 = univariate_outlyingness(&scaled).unwrap();
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
