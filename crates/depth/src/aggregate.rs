//! Pointwise-depth aggregation (the classical UFD→MFD depth extension the
//! paper critiques in Sec. 1.2) and the fast modified band depth.
//!
//! The classic recipe computes a multivariate depth of the point cloud
//! `{X_i(t_j)}_i` at every grid point and aggregates over `t`. The paper
//! identifies two weaknesses that our implementations make explicit and
//! testable:
//!
//! 1. the **integral** aggregation averages away isolated outliers
//!    (issue (2)), which the **infimum** aggregation fixes;
//! 2. pointwise depths barely react to persistent shape outliers
//!    (issue (1)).

use crate::dataset::GriddedDataSet;
use crate::error::DepthError;
use crate::projection::{projection_outlyingness, ProjectionConfig};
use crate::{FunctionalOutlierScorer, Result};
use mfod_linalg::vector;

/// How pointwise depth values are aggregated into a sample score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// `(1/|T|) ∫ depth dt` — the classical average (Fraiman–Muniz /
    /// Claeskens et al. style); susceptible to masking isolated outliers.
    Integral,
    /// `inf_t depth(t)` — the paper's suggested fix for issue (2): a single
    /// deeply outlying instant dominates the score.
    Infimum,
}

/// Integrated (or infimum-aggregated) projection-depth scorer: pointwise
/// projection depth `PD = 1/(1+O)` aggregated over the grid; outlyingness
/// is reported as `1 − aggregated depth` (higher = more outlying).
#[derive(Debug, Clone)]
pub struct IntegratedDepth {
    /// Aggregation rule over `t`.
    pub aggregation: Aggregation,
    /// Random-projection settings for multivariate pointwise clouds.
    pub projection: ProjectionConfig,
}

impl IntegratedDepth {
    /// Classical integral aggregation.
    pub fn integral() -> Self {
        IntegratedDepth {
            aggregation: Aggregation::Integral,
            projection: ProjectionConfig::default(),
        }
    }

    /// Infimum aggregation.
    pub fn infimum() -> Self {
        IntegratedDepth {
            aggregation: Aggregation::Infimum,
            projection: ProjectionConfig::default(),
        }
    }

    /// Pointwise depths for every sample: an `n x m` table (row = sample).
    pub fn pointwise_depths(&self, data: &GriddedDataSet) -> Result<Vec<Vec<f64>>> {
        let n = data.n();
        let m = data.m();
        let mut table = vec![vec![0.0; m]; n];
        for j in 0..m {
            let cloud = data.point_cloud(j);
            let o = projection_outlyingness(&cloud, &self.projection)
                .map_err(|e| e.at_grid_point(j))?;
            for i in 0..n {
                table[i][j] = 1.0 / (1.0 + o[i]);
            }
        }
        Ok(table)
    }
}

impl FunctionalOutlierScorer for IntegratedDepth {
    fn name(&self) -> &'static str {
        match self.aggregation {
            Aggregation::Integral => "integrated-depth",
            Aggregation::Infimum => "infimum-depth",
        }
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        let grid = data.grid();
        let span = grid[data.m() - 1] - grid[0];
        let table = self.pointwise_depths(data)?;
        Ok(table
            .into_iter()
            .map(|row| {
                let depth = match self.aggregation {
                    Aggregation::Integral => vector::trapz(grid, &row) / span,
                    Aggregation::Infimum => vector::min(&row),
                };
                1.0 - depth
            })
            .collect())
    }
}

/// Modified band depth (López-Pintado & Romo, J=2 bands) for univariate
/// functional data, computed with the O(n·m·log n) rank formula of Sun &
/// Genton; outlyingness is `1 − MBD`.
///
/// For multivariate data the per-channel MBD values are averaged (the
/// marginal MFD extension).
#[derive(Debug, Clone, Copy, Default)]
pub struct ModifiedBandDepth;

impl ModifiedBandDepth {
    /// MBD value (depth, not outlyingness) per sample for channel `k`.
    fn mbd_channel(&self, data: &GriddedDataSet, k: usize) -> Vec<f64> {
        let n = data.n();
        let m = data.m();
        let pairs = (n * (n - 1)) as f64 / 2.0;
        let mut depth = vec![0.0; n];
        for j in 0..m {
            let vals = data.channel_at(j, k);
            let ranks = vector::average_ranks(&vals);
            for i in 0..n {
                // With rank r (1-based), the number of pairs {a, b} whose
                // band [min, max] covers x_i at this grid point is
                // (r − 1)(n − r) + (n − 1): one curve strictly below and one
                // strictly above, plus every pair that contains curve i
                // itself. Average ranks extend this smoothly to ties.
                let r = ranks[i];
                let count = (r - 1.0) * (n as f64 - r) + (n as f64 - 1.0);
                depth[i] += count / pairs;
            }
        }
        depth.iter_mut().for_each(|d| *d /= m as f64);
        depth
    }
}

impl FunctionalOutlierScorer for ModifiedBandDepth {
    fn name(&self) -> &'static str {
        "modified-band-depth"
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        if data.n() < 2 {
            return Err(DepthError::TooFewSamples {
                got: data.n(),
                need: 2,
            });
        }
        let n = data.n();
        let mut depth = vec![0.0; n];
        for k in 0..data.dim() {
            let d = self.mbd_channel(data, k);
            for i in 0..n {
                depth[i] += d[i];
            }
        }
        Ok(depth
            .into_iter()
            .map(|d| 1.0 - d / data.dim() as f64)
            .collect())
    }
}

/// The classical Fraiman–Muniz depth (2001; the paper's reference \[6\]):
/// pointwise univariate rank depth `1 − |1/2 − F̂_t(x)|` integrated over the
/// grid, channels averaged for multivariate data. Outlyingness is
/// `1 − depth`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FraimanMuniz;

impl FraimanMuniz {
    fn depth_channel(&self, data: &GriddedDataSet, k: usize) -> Vec<f64> {
        let n = data.n();
        let m = data.m();
        let mut depth = vec![0.0; n];
        for j in 0..m {
            let vals = data.channel_at(j, k);
            let ranks = vector::average_ranks(&vals);
            for i in 0..n {
                // midrank empirical CDF F̂ = (rank − ½)/n: symmetric, so the
                // sample median gets F̂ = ½ exactly for odd n
                let f = (ranks[i] - 0.5) / n as f64;
                depth[i] += 1.0 - (0.5 - f).abs();
            }
        }
        depth.iter_mut().for_each(|d| *d /= m as f64);
        depth
    }
}

impl FunctionalOutlierScorer for FraimanMuniz {
    fn name(&self) -> &'static str {
        "fraiman-muniz"
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        if data.n() < 2 {
            return Err(DepthError::TooFewSamples {
                got: data.n(),
                need: 2,
            });
        }
        let n = data.n();
        let mut depth = vec![0.0; n];
        for k in 0..data.dim() {
            let d = self.depth_channel(data, k);
            for i in 0..n {
                depth[i] += d[i];
            }
        }
        Ok(depth
            .into_iter()
            .map(|d| 1.0 - d / data.dim() as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_bundle(extra: Option<Vec<f64>>) -> GriddedDataSet {
        let m = 30;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut curves: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                let a = (i as f64 - 4.0) * 0.1;
                grid.iter().map(|&t| (6.0 * t).sin() + a).collect()
            })
            .collect();
        if let Some(e) = extra {
            curves.push(e);
        }
        GriddedDataSet::from_univariate(grid, curves).unwrap()
    }

    #[test]
    fn central_curve_is_deepest_under_integral() {
        let d = shifted_bundle(None);
        let s = IntegratedDepth::integral().score(&d).unwrap();
        // curve 4 (offset 0) is the central one: minimal outlyingness
        let min_idx = s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 4, "{s:?}");
    }

    #[test]
    fn infimum_catches_isolated_outlier_integral_masks() {
        // A curve identical to the deepest one except for one huge spike.
        let m = 30;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut spiky: Vec<f64> = grid.iter().map(|&t| (6.0 * t).sin()).collect();
        spiky[15] += 50.0;
        let d = shifted_bundle(Some(spiky));
        let inf = IntegratedDepth::infimum().score(&d).unwrap();
        let int = IntegratedDepth::integral().score(&d).unwrap();
        let n = d.n();
        // infimum must rank the spiky curve most outlying
        let inf_rank = inf.iter().filter(|&&v| v > inf[n - 1]).count();
        assert_eq!(inf_rank, 0, "infimum should top-rank the spike: {inf:?}");
        // the spiky curve's margin over the runner-up is much larger under
        // infimum than under integral (the masking effect, issue (2))
        let margin = |s: &[f64]| {
            let mut sorted = s.to_vec();
            sorted.sort_by(|a, b| b.total_cmp(a));
            (sorted[0] - sorted[1]) / (sorted[1].abs() + 1e-12)
        };
        assert!(
            margin(&inf) > margin(&int),
            "infimum margin {} vs integral margin {}",
            margin(&inf),
            margin(&int)
        );
    }

    #[test]
    fn mbd_ranks_center_deepest() {
        let d = shifted_bundle(None);
        let s = ModifiedBandDepth.score(&d).unwrap();
        let min_idx = s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 4, "{s:?}");
        // extreme offsets are the most outlying
        let max_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(max_idx == 0 || max_idx == 8);
    }

    #[test]
    fn mbd_rank_formula_matches_bruteforce() {
        // brute-force MBD on a tiny dataset with distinct values
        let grid = vec![0.0, 1.0, 2.0];
        let curves = vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 3.0, 2.0],
            vec![2.0, 2.0, 1.0],
            vec![3.0, 0.0, 3.0],
        ];
        let d = GriddedDataSet::from_univariate(grid, curves.clone()).unwrap();
        let fast = ModifiedBandDepth.score(&d).unwrap();
        let n = curves.len();
        let m = 3;
        let pairs = (n * (n - 1) / 2) as f64;
        for i in 0..n {
            let mut depth = 0.0;
            for j in 0..m {
                let mut covered = 0.0;
                for a in 0..n {
                    for b in (a + 1)..n {
                        let lo = curves[a][j].min(curves[b][j]);
                        let hi = curves[a][j].max(curves[b][j]);
                        if curves[i][j] >= lo && curves[i][j] <= hi {
                            covered += 1.0;
                        }
                    }
                }
                depth += covered / pairs;
            }
            depth /= m as f64;
            assert!(
                (fast[i] - (1.0 - depth)).abs() < 1e-12,
                "sample {i}: fast {} vs brute {}",
                fast[i],
                1.0 - depth
            );
        }
    }

    #[test]
    fn mbd_depth_bounds() {
        let d = shifted_bundle(None);
        let s = ModifiedBandDepth.score(&d).unwrap();
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)), "{s:?}");
        assert_eq!(ModifiedBandDepth.name(), "modified-band-depth");
    }

    #[test]
    fn scorer_names() {
        assert_eq!(IntegratedDepth::integral().name(), "integrated-depth");
        assert_eq!(IntegratedDepth::infimum().name(), "infimum-depth");
    }

    #[test]
    fn mbd_needs_two_samples() {
        let grid = vec![0.0, 1.0];
        let d = GriddedDataSet::from_univariate(grid, vec![vec![0.0, 1.0]]).unwrap();
        assert!(ModifiedBandDepth.score(&d).is_err());
        assert!(FraimanMuniz.score(&d).is_err());
    }

    #[test]
    fn fraiman_muniz_ranks_center_deepest() {
        let d = shifted_bundle(None);
        let s = FraimanMuniz.score(&d).unwrap();
        let min_idx = s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 4, "{s:?}");
        // the extreme offsets are the most outlying
        let max_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(max_idx == 0 || max_idx == 8);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(FraimanMuniz.name(), "fraiman-muniz");
    }

    #[test]
    fn fraiman_muniz_known_values_tiny() {
        // 3 constant curves at heights 0, 1, 2: ranks 1, 2, 3 →
        // F̂ = 1/6, 1/2, 5/6 → depths 2/3, 1, 2/3 → outlyingness 1/3, 0, 1/3.
        let grid = vec![0.0, 1.0];
        let d = GriddedDataSet::from_univariate(
            grid,
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]],
        )
        .unwrap();
        let s = FraimanMuniz.score(&d).unwrap();
        assert!((s[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!(s[1].abs() < 1e-12);
        assert!((s[2] - 1.0 / 3.0).abs() < 1e-12);
    }
}
