//! Error type for depth-based scorers.

use std::fmt;

/// Errors produced by functional depth computations.
#[derive(Debug, Clone, PartialEq)]
pub enum DepthError {
    /// The dataset is empty or too small for the method.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Sample shapes (grid length or channel count) disagree.
    ShapeMismatch(String),
    /// Input contains NaN or infinite values.
    NonFinite,
    /// The grid is invalid (not strictly increasing, too short).
    InvalidGrid(String),
    /// A scale estimate degenerated to zero, making outlyingness undefined
    /// (e.g. more than half the observations identical at some point).
    DegenerateScale {
        /// What was being scaled when the MAD collapsed (the point set, a
        /// projection direction, …).
        context: String,
    },
    /// Every projection direction degenerated (zero MAD along each one),
    /// so projection outlyingness is undefined — the cloud is concentrated
    /// on too few distinct points.
    DegenerateDirections {
        /// Directions attempted (random draws plus coordinate axes).
        attempted: usize,
    },
    /// A pointwise computation failed at a specific grid point.
    AtGridPoint {
        /// Index of the grid point at which the failure occurred.
        grid_index: usize,
        /// The underlying failure.
        source: Box<DepthError>,
    },
    /// Invalid method parameter.
    InvalidParameter(String),
}

impl DepthError {
    /// Wraps this error with the grid point at which it occurred, so
    /// pointwise scorers (Dir.out, FUNTA) report *where* along the domain
    /// a depth computation collapsed instead of a context-free failure.
    pub fn at_grid_point(self, grid_index: usize) -> DepthError {
        DepthError::AtGridPoint {
            grid_index,
            source: Box::new(self),
        }
    }
}

impl fmt::Display for DepthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepthError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need {need}")
            }
            DepthError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            DepthError::NonFinite => write!(f, "input contains NaN or infinite values"),
            DepthError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            DepthError::DegenerateScale { context } => {
                write!(f, "degenerate scale (zero MAD): {context}")
            }
            DepthError::DegenerateDirections { attempted } => {
                write!(
                    f,
                    "all {attempted} projection directions degenerated (zero MAD); \
                     the cloud is concentrated on too few distinct points"
                )
            }
            DepthError::AtGridPoint { grid_index, source } => {
                write!(f, "at grid index {grid_index}: {source}")
            }
            DepthError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DepthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DepthError::AtGridPoint { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DepthError::TooFewSamples { got: 1, need: 3 }
            .to_string()
            .contains('3'));
        assert!(DepthError::ShapeMismatch("p".into())
            .to_string()
            .contains('p'));
        assert!(DepthError::DegenerateScale {
            context: "reference set".into()
        }
        .to_string()
        .contains("reference set"));
        assert!(DepthError::DegenerateDirections { attempted: 132 }
            .to_string()
            .contains("132"));
        assert!(DepthError::InvalidGrid("g".into())
            .to_string()
            .contains('g'));
        assert!(DepthError::NonFinite.to_string().contains("NaN"));
        assert!(DepthError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn grid_context_wraps_and_exposes_the_source() {
        let inner = DepthError::DegenerateScale {
            context: "projection of the reference cloud".into(),
        };
        let wrapped = inner.clone().at_grid_point(17);
        let msg = wrapped.to_string();
        assert!(msg.contains("grid index 17"), "{msg}");
        assert!(msg.contains("projection of the reference cloud"), "{msg}");
        let source = std::error::Error::source(&wrapped).expect("source preserved");
        assert_eq!(source.to_string(), inner.to_string());
        assert!(std::error::Error::source(&inner).is_none());
    }
}
