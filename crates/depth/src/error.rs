//! Error type for depth-based scorers.

use std::fmt;

/// Errors produced by functional depth computations.
#[derive(Debug, Clone, PartialEq)]
pub enum DepthError {
    /// The dataset is empty or too small for the method.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Sample shapes (grid length or channel count) disagree.
    ShapeMismatch(String),
    /// Input contains NaN or infinite values.
    NonFinite,
    /// The grid is invalid (not strictly increasing, too short).
    InvalidGrid(String),
    /// A scale estimate degenerated to zero, making outlyingness undefined
    /// (e.g. more than half the observations identical at some point).
    DegenerateScale {
        /// Grid index at which it happened.
        grid_index: usize,
    },
    /// Invalid method parameter.
    InvalidParameter(String),
}

impl fmt::Display for DepthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepthError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need {need}")
            }
            DepthError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            DepthError::NonFinite => write!(f, "input contains NaN or infinite values"),
            DepthError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            DepthError::DegenerateScale { grid_index } => {
                write!(f, "degenerate scale (zero MAD) at grid index {grid_index}")
            }
            DepthError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DepthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DepthError::TooFewSamples { got: 1, need: 3 }
            .to_string()
            .contains('3'));
        assert!(DepthError::ShapeMismatch("p".into())
            .to_string()
            .contains('p'));
        assert!(DepthError::DegenerateScale { grid_index: 4 }
            .to_string()
            .contains('4'));
        assert!(DepthError::InvalidGrid("g".into())
            .to_string()
            .contains('g'));
        assert!(DepthError::NonFinite.to_string().contains("NaN"));
        assert!(DepthError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
    }
}
