//! Directional outlyingness — `Dir.out` (Dai & Genton, *CSDA* 2019), the
//! paper's second baseline.
//!
//! At every grid point the point cloud `{X_i(t_j)}_i ⊂ R^p` is scored with
//! projection-depth outlyingness, oriented by the unit vector from the
//! cloud's center to the point:
//!
//! ```text
//! O(X_i(t), t) = (1/PD(X_i(t)) − 1) · v_i(t) = O_pd(X_i(t)) · v_i(t)
//! ```
//!
//! The pointwise scores are then aggregated over `t` into
//!
//! * `MO_i = (1/|T|) ∫ O(X_i(t), t) dt` — *mean* directional outlyingness
//!   (a vector in `R^p`; large for magnitude/isolated-style outliers), and
//! * `VO_i = (1/|T|) ∫ ‖O(X_i(t), t) − MO_i‖² dt` — *variation* of
//!   directional outlyingness (large for shape/persistent outliers),
//!
//! combined into the **functional outlyingness** `FO = ‖MO‖² + VO` used as
//! the ranking score (Dai & Genton eq. (5); their MS-plot reads the two
//! components separately, which [`DirOutScores`] exposes).
//!
//! Both the outer per-grid-point cloud-scoring loop and the per-direction
//! work inside each grid point run on the worker pool of
//! [`mfod_linalg::par`], with per-point blocks reassembled in grid order —
//! scores are bit-for-bit identical at any pool size.

use crate::dataset::GriddedDataSet;
use crate::projection::{
    coordinate_median, projection_outlyingness_against_on, projection_outlyingness_on,
    ProjectionConfig,
};
use crate::{FunctionalOutlierScorer, Result};
use mfod_linalg::{par, vector, Matrix};

/// The directional-outlyingness scorer.
#[derive(Debug, Clone, Default)]
pub struct DirOut {
    /// Random-projection settings for the pointwise projection depth
    /// (ignored for univariate clouds, which are computed exactly).
    pub projection: ProjectionConfig,
}

impl DirOut {
    /// Scorer with default projection settings.
    pub fn new() -> Self {
        DirOut::default()
    }

    /// Full decomposition: per-sample `MO` vectors, `VO` and `FO` values.
    /// Runs on the global worker pool; see [`DirOut::decompose_on`].
    pub fn decompose(&self, data: &GriddedDataSet) -> Result<DirOutScores> {
        self.decompose_on(par::global(), data)
    }

    /// [`DirOut::decompose`] on an explicit worker pool.
    ///
    /// Every grid point's point cloud is scored independently (the RNG
    /// direction stream is re-seeded per grid point), so the outer grid
    /// loop fans out across `pool` and the per-point blocks are
    /// reassembled in grid order — scores are bit-for-bit identical at
    /// any pool size, and the first failing grid point in grid order is
    /// the one reported, exactly as in the sequential loop.
    pub fn decompose_on(&self, pool: &par::Pool, data: &GriddedDataSet) -> Result<DirOutScores> {
        let dims = Dims {
            n: data.n(),
            m: data.m(),
            p: data.dim(),
        };
        decompose_pointwise_on(pool, dims, data.grid(), |j| {
            let cloud = data.point_cloud(j);
            let outcome = projection_outlyingness_on(pool, &cloud, &self.projection)
                .map_err(|e| e.at_grid_point(j))?;
            Ok(oriented_block(&outcome, &cloud, &cloud))
        })
    }
}

/// The MO/VO/FO decomposition of a dataset under directional outlyingness.
#[derive(Debug, Clone)]
pub struct DirOutScores {
    /// Mean directional outlyingness per sample (vectors in `R^p`).
    pub mo: Vec<Vec<f64>>,
    /// Variation of directional outlyingness per sample.
    pub vo: Vec<f64>,
    /// Combined functional outlyingness `‖MO‖² + VO` per sample.
    pub fo: Vec<f64>,
    /// Projection directions skipped as degenerate, summed over all grid
    /// points — a quality signal: when it approaches
    /// [`DirOutScores::attempted_directions`] the effective direction
    /// budget has collapsed and the supremum is estimated from very few
    /// directions.
    pub degenerate_directions: usize,
    /// Projection directions attempted across all grid points
    /// (`used + degenerate`, as reported by the projection layer per grid
    /// point) — the denominator for
    /// [`DirOutScores::degenerate_directions`] when reporting
    /// direction-budget collapse.
    pub attempted_directions: usize,
}

impl DirOutScores {
    /// MS-plot coordinates `(‖MO‖, VO)` per sample — Dai & Genton's
    /// magnitude–shape plot. Points far along the `‖MO‖` axis are
    /// magnitude-style outliers; far along `VO`, shape-style; far in both,
    /// mixed.
    pub fn ms_points(&self) -> Vec<(f64, f64)> {
        self.mo
            .iter()
            .zip(&self.vo)
            .map(|(mo, &vo)| (vector::norm2(mo), vo))
            .collect()
    }
}

impl DirOut {
    /// MO/VO/FO of each `queries` sample with location/scale estimated from
    /// `reference` only (the train/test protocol: training contamination
    /// inflates the reference MAD and genuinely degrades the method, as the
    /// paper's Fig. 3 probes). Runs on the global worker pool; see
    /// [`DirOut::decompose_against_on`].
    pub fn decompose_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<DirOutScores> {
        self.decompose_against_on(par::global(), reference, queries)
    }

    /// [`DirOut::decompose_against`] on an explicit worker pool, with the
    /// same grid-order determinism contract as [`DirOut::decompose_on`].
    pub fn decompose_against_on(
        &self,
        pool: &par::Pool,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<DirOutScores> {
        if reference.m() != queries.m() || reference.dim() != queries.dim() {
            return Err(crate::DepthError::ShapeMismatch(
                "reference and queries must share grid and channels".into(),
            ));
        }
        let dims = Dims {
            n: queries.n(),
            m: queries.m(),
            p: queries.dim(),
        };
        decompose_pointwise_on(pool, dims, queries.grid(), |j| {
            let ref_cloud = reference.point_cloud(j);
            let query_cloud = queries.point_cloud(j);
            let outcome = projection_outlyingness_against_on(
                pool,
                &ref_cloud,
                &query_cloud,
                &self.projection,
            )
            .map_err(|e| e.at_grid_point(j))?;
            Ok(oriented_block(&outcome, &ref_cloud, &query_cloud))
        })
    }
}

/// Problem sizes shared by the decompose drivers.
#[derive(Clone, Copy)]
struct Dims {
    /// Scored samples.
    n: usize,
    /// Grid points.
    m: usize,
    /// Channels.
    p: usize,
}

/// Per-grid-point result: the flattened `n × p` oriented-outlyingness
/// block plus the direction bookkeeping, accumulated in grid order.
type PointBlock = (Vec<f64>, usize, usize);

/// Orients pointwise outlyingness magnitudes at one grid point: each
/// scored row of `queries` gets `O_pd(x_i) · v_i` with `v_i` the unit
/// vector from the `reference` cloud's coordinate-wise median to the
/// point. The outcome's degenerate and attempted (`used + degenerate`)
/// direction counts ride along for grid-order accumulation.
fn oriented_block(
    outcome: &crate::projection::ProjectionOutcome,
    reference: &Matrix,
    queries: &Matrix,
) -> PointBlock {
    let magnitude = &outcome.scores;
    let n = queries.nrows();
    let p = queries.ncols();
    let center = coordinate_median(reference);
    let mut block = vec![0.0; n * p];
    for i in 0..n {
        let x = queries.row(i);
        let mut dir: Vec<f64> = x.iter().zip(&center).map(|(a, c)| a - c).collect();
        let norm = vector::normalize(&mut dir, 1e-12);
        if norm <= 1e-12 {
            // the point sits exactly at the center: zero outlyingness
            dir.iter_mut().for_each(|d| *d = 0.0);
        }
        for k in 0..p {
            block[i * p + k] = magnitude[i] * dir[k];
        }
    }
    (
        block,
        outcome.degenerate_directions,
        outcome.used_directions + outcome.degenerate_directions,
    )
}

/// Shared driver of both decompositions: fans `per_point` (the pointwise
/// cloud scoring at grid index `j`, returning the oriented `n × p` block
/// and a degenerate-direction count) out over `pool`, reassembles the
/// blocks in grid order, and aggregates over `t` with the trapezoid rule
/// normalized by `|T|`.
fn decompose_pointwise_on(
    pool: &par::Pool,
    dims: Dims,
    grid: &[f64],
    per_point: impl Fn(usize) -> Result<PointBlock> + Sync,
) -> Result<DirOutScores> {
    let Dims { n, m, p } = dims;
    let span = grid[m - 1] - grid[0];
    let blocks = pool.try_map(m, per_point)?;
    let mut degenerate_directions = 0usize;
    let mut attempted_directions = 0usize;
    for (_, degenerate, attempted) in &blocks {
        degenerate_directions += degenerate;
        attempted_directions += attempted;
    }
    // Aggregate straight off the per-point blocks — sample i's value at
    // grid point j, channel k is blocks[j].0[i*p + k] — so no transposed
    // copy of the O(n·m·p) oriented-outlyingness tensor is materialized.
    let mut mo = Vec::with_capacity(n);
    let mut vo = Vec::with_capacity(n);
    let mut fo = Vec::with_capacity(n);
    for i in 0..n {
        let mut mo_i = vec![0.0; p];
        for (k, mo_ik) in mo_i.iter_mut().enumerate() {
            let series: Vec<f64> = (0..m).map(|j| blocks[j].0[i * p + k]).collect();
            *mo_ik = vector::trapz(grid, &series) / span;
        }
        let dev: Vec<f64> = (0..m)
            .map(|j| {
                (0..p)
                    .map(|k| {
                        let d = blocks[j].0[i * p + k] - mo_i[k];
                        d * d
                    })
                    .sum::<f64>()
            })
            .collect();
        let vo_i = vector::trapz(grid, &dev) / span;
        let fo_i = vector::dot(&mo_i, &mo_i) + vo_i;
        mo.push(mo_i);
        vo.push(vo_i);
        fo.push(fo_i);
    }
    Ok(DirOutScores {
        mo,
        vo,
        fo,
        degenerate_directions,
        attempted_directions,
    })
}

impl FunctionalOutlierScorer for DirOut {
    fn name(&self) -> &'static str {
        "dir.out"
    }

    fn snapshot(&self) -> Option<crate::DepthScorerSnapshot> {
        Some(crate::DepthScorerSnapshot::DirOut {
            n_directions: self.projection.n_directions,
            seed: self.projection.seed,
        })
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        Ok(self.decompose(data)?.fo)
    }

    fn score_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<Vec<f64>> {
        Ok(self.decompose_against(reference, queries)?.fo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle_with(outlier: Vec<f64>, m: usize) -> GriddedDataSet {
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut curves: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let a = (i as f64 - 5.5) * 0.05;
                grid.iter()
                    .map(|&t| (std::f64::consts::TAU * t).sin() + a)
                    .collect()
            })
            .collect();
        curves.push(outlier);
        GriddedDataSet::from_univariate(grid, curves).unwrap()
    }

    #[test]
    fn magnitude_outlier_has_large_mo() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let shifted: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin() + 3.0)
            .collect();
        let d = bundle_with(shifted, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        let n = d.n();
        // outlier is the last sample: largest ‖MO‖, and largest FO
        let mo_norm: Vec<f64> = scores.mo.iter().map(|v| vector::norm2(v)).collect();
        let max_mo = mo_norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_mo, n - 1, "{mo_norm:?}");
        let max_fo = scores
            .fo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, n - 1);
        // a persistent magnitude shift has *low* VO relative to its MO²
        let i = n - 1;
        assert!(scores.fo[i] > scores.vo[i] * 2.0, "MO should dominate");
    }

    #[test]
    fn shape_outlier_has_large_vo() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        // phase-inverted: same range, different shape
        let inverted: Vec<f64> = grid
            .iter()
            .map(|&t| -(std::f64::consts::TAU * t).sin())
            .collect();
        let d = bundle_with(inverted, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        let n = d.n();
        let max_vo = scores
            .vo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_vo, n - 1, "{:?}", scores.vo);
        let max_fo = scores
            .fo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, n - 1);
    }

    #[test]
    fn isolated_spike_detected() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut spiky: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin())
            .collect();
        spiky[20] += 5.0; // narrow magnitude peak
        let d = bundle_with(spiky, m);
        let s = DirOut::new().score(&d).unwrap();
        let max_fo = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, d.n() - 1, "{s:?}");
    }

    #[test]
    fn ms_points_reflect_outlier_type() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        // magnitude outlier: large ‖MO‖, modest VO
        let shifted: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin() + 3.0)
            .collect();
        let d = bundle_with(shifted, m);
        let pts = DirOut::new().decompose(&d).unwrap().ms_points();
        let n = d.n();
        let max_mo = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .unwrap()
            .0;
        assert_eq!(max_mo, n - 1);
        // shape outlier: large VO relative to the bundle
        let inverted: Vec<f64> = grid
            .iter()
            .map(|&t| -(std::f64::consts::TAU * t).sin())
            .collect();
        let d = bundle_with(inverted, m);
        let pts = DirOut::new().decompose(&d).unwrap().ms_points();
        let max_vo = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .unwrap()
            .0;
        assert_eq!(max_vo, n - 1);
    }

    #[test]
    fn grid_loop_is_identical_across_pool_sizes() {
        let m = 30;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let shifted: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin() + 2.0)
            .collect();
        let d = bundle_with(shifted, m);
        let scorer = DirOut::new();
        let seq = scorer
            .decompose_on(&par::Pool::with_threads(1), &d)
            .unwrap();
        let wide = scorer
            .decompose_on(&par::Pool::with_threads(8), &d)
            .unwrap();
        let global = scorer.decompose(&d).unwrap();
        for other in [&wide, &global] {
            assert_eq!(seq.degenerate_directions, other.degenerate_directions);
            assert_eq!(seq.attempted_directions, other.attempted_directions);
            for (a, b) in seq.fo.iter().zip(&other.fo) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in seq.vo.iter().zip(&other.vo) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (ma, mb) in seq.mo.iter().zip(&other.mo) {
                for (a, b) in ma.iter().zip(mb) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        // the against variant too: reference = first 10 curves
        let reference = d.subset(&(0..10).collect::<Vec<_>>()).unwrap();
        let seq_q = scorer
            .decompose_against_on(&par::Pool::with_threads(1), &reference, &d)
            .unwrap();
        let wide_q = scorer
            .decompose_against_on(&par::Pool::with_threads(8), &reference, &d)
            .unwrap();
        assert_eq!(seq_q.degenerate_directions, wide_q.degenerate_directions);
        for (a, b) in seq_q.fo.iter().zip(&wide_q.fo) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scores_nonnegative_and_finite() {
        let m = 25;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let flat: Vec<f64> = grid.to_vec();
        let d = bundle_with(flat, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        assert!(scores.fo.iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!(scores.vo.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // univariate clouds take the exact path: one direction per point
        assert_eq!(scores.attempted_directions, m);
        assert_eq!(scores.degenerate_directions, 0);
    }

    #[test]
    fn multivariate_input() {
        use mfod_linalg::Matrix;
        let m = 20;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut samples = Vec::new();
        for i in 0..10 {
            let a = (i as f64 - 4.5) * 0.1;
            let mut s = Matrix::zeros(m, 2);
            for (j, &t) in grid.iter().enumerate() {
                s[(j, 0)] = t + a;
                s[(j, 1)] = t * t + a;
            }
            samples.push(s);
        }
        // abnormal correlation: channel 2 inversely related
        let mut s = Matrix::zeros(m, 2);
        for (j, &t) in grid.iter().enumerate() {
            s[(j, 0)] = t;
            s[(j, 1)] = -t * t;
        }
        samples.push(s);
        let d = GriddedDataSet::new(grid, samples).unwrap();
        let scores = DirOut::new().score(&d).unwrap();
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 10, "{scores:?}");
        assert_eq!(DirOut::new().name(), "dir.out");
    }
}
