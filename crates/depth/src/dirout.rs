//! Directional outlyingness — `Dir.out` (Dai & Genton, *CSDA* 2019), the
//! paper's second baseline.
//!
//! At every grid point the point cloud `{X_i(t_j)}_i ⊂ R^p` is scored with
//! projection-depth outlyingness, oriented by the unit vector from the
//! cloud's center to the point:
//!
//! ```text
//! O(X_i(t), t) = (1/PD(X_i(t)) − 1) · v_i(t) = O_pd(X_i(t)) · v_i(t)
//! ```
//!
//! The pointwise scores are then aggregated over `t` into
//!
//! * `MO_i = (1/|T|) ∫ O(X_i(t), t) dt` — *mean* directional outlyingness
//!   (a vector in `R^p`; large for magnitude/isolated-style outliers), and
//! * `VO_i = (1/|T|) ∫ ‖O(X_i(t), t) − MO_i‖² dt` — *variation* of
//!   directional outlyingness (large for shape/persistent outliers),
//!
//! combined into the **functional outlyingness** `FO = ‖MO‖² + VO` used as
//! the ranking score (Dai & Genton eq. (5); their MS-plot reads the two
//! components separately, which [`DirOutScores`] exposes).

use crate::dataset::GriddedDataSet;
use crate::projection::{coordinate_median, projection_outlyingness_full, ProjectionConfig};
use crate::{FunctionalOutlierScorer, Result};
use mfod_linalg::vector;

/// The directional-outlyingness scorer.
#[derive(Debug, Clone, Default)]
pub struct DirOut {
    /// Random-projection settings for the pointwise projection depth
    /// (ignored for univariate clouds, which are computed exactly).
    pub projection: ProjectionConfig,
}

impl DirOut {
    /// Scorer with default projection settings.
    pub fn new() -> Self {
        DirOut::default()
    }

    /// Full decomposition: per-sample `MO` vectors, `VO` and `FO` values.
    pub fn decompose(&self, data: &GriddedDataSet) -> Result<DirOutScores> {
        let n = data.n();
        let m = data.m();
        let p = data.dim();
        let grid = data.grid();
        let span = grid[m - 1] - grid[0];
        // pointwise directional outlyingness, O[i][j] ∈ R^p flattened
        let mut o = vec![vec![0.0; m * p]; n];
        let mut degenerate_directions = 0usize;
        for j in 0..m {
            let cloud = data.point_cloud(j);
            let outcome = projection_outlyingness_full(&cloud, &self.projection)
                .map_err(|e| e.at_grid_point(j))?;
            degenerate_directions += outcome.degenerate_directions;
            let magnitude = outcome.scores;
            let center = coordinate_median(&cloud);
            for i in 0..n {
                let x = cloud.row(i);
                let mut dir: Vec<f64> = x.iter().zip(&center).map(|(a, c)| a - c).collect();
                let norm = vector::normalize(&mut dir, 1e-12);
                if norm <= 1e-12 {
                    // the point sits exactly at the center: zero outlyingness
                    dir.iter_mut().for_each(|d| *d = 0.0);
                }
                for k in 0..p {
                    o[i][j * p + k] = magnitude[i] * dir[k];
                }
            }
        }
        // aggregate over t with the trapezoid rule, normalized by |T|
        let mut mo = Vec::with_capacity(n);
        let mut vo = Vec::with_capacity(n);
        let mut fo = Vec::with_capacity(n);
        for oi in &o {
            let mut mo_i = vec![0.0; p];
            for (k, mo_ik) in mo_i.iter_mut().enumerate() {
                let series: Vec<f64> = (0..m).map(|j| oi[j * p + k]).collect();
                *mo_ik = vector::trapz(grid, &series) / span;
            }
            let dev: Vec<f64> = (0..m)
                .map(|j| {
                    (0..p)
                        .map(|k| {
                            let d = oi[j * p + k] - mo_i[k];
                            d * d
                        })
                        .sum::<f64>()
                })
                .collect();
            let vo_i = vector::trapz(grid, &dev) / span;
            let fo_i = vector::dot(&mo_i, &mo_i) + vo_i;
            mo.push(mo_i);
            vo.push(vo_i);
            fo.push(fo_i);
        }
        Ok(DirOutScores {
            mo,
            vo,
            fo,
            degenerate_directions,
        })
    }
}

/// The MO/VO/FO decomposition of a dataset under directional outlyingness.
#[derive(Debug, Clone)]
pub struct DirOutScores {
    /// Mean directional outlyingness per sample (vectors in `R^p`).
    pub mo: Vec<Vec<f64>>,
    /// Variation of directional outlyingness per sample.
    pub vo: Vec<f64>,
    /// Combined functional outlyingness `‖MO‖² + VO` per sample.
    pub fo: Vec<f64>,
    /// Projection directions skipped as degenerate, summed over all grid
    /// points — a quality signal: when it approaches
    /// `m × (n_directions + p)` the effective direction budget has
    /// collapsed and the supremum is estimated from very few directions.
    pub degenerate_directions: usize,
}

impl DirOutScores {
    /// MS-plot coordinates `(‖MO‖, VO)` per sample — Dai & Genton's
    /// magnitude–shape plot. Points far along the `‖MO‖` axis are
    /// magnitude-style outliers; far along `VO`, shape-style; far in both,
    /// mixed.
    pub fn ms_points(&self) -> Vec<(f64, f64)> {
        self.mo
            .iter()
            .zip(&self.vo)
            .map(|(mo, &vo)| (vector::norm2(mo), vo))
            .collect()
    }
}

impl DirOut {
    /// MO/VO/FO of each `queries` sample with location/scale estimated from
    /// `reference` only (the train/test protocol: training contamination
    /// inflates the reference MAD and genuinely degrades the method, as the
    /// paper's Fig. 3 probes).
    pub fn decompose_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<DirOutScores> {
        if reference.m() != queries.m() || reference.dim() != queries.dim() {
            return Err(crate::DepthError::ShapeMismatch(
                "reference and queries must share grid and channels".into(),
            ));
        }
        let n = queries.n();
        let m = queries.m();
        let p = queries.dim();
        let grid = queries.grid();
        let span = grid[m - 1] - grid[0];
        let mut o = vec![vec![0.0; m * p]; n];
        let mut degenerate_directions = 0usize;
        for j in 0..m {
            let ref_cloud = reference.point_cloud(j);
            let query_cloud = queries.point_cloud(j);
            let outcome = crate::projection::projection_outlyingness_against_full(
                &ref_cloud,
                &query_cloud,
                &self.projection,
            )
            .map_err(|e| e.at_grid_point(j))?;
            degenerate_directions += outcome.degenerate_directions;
            let magnitude = outcome.scores;
            let center = coordinate_median(&ref_cloud);
            for i in 0..n {
                let x = query_cloud.row(i);
                let mut dir: Vec<f64> = x.iter().zip(&center).map(|(a, c)| a - c).collect();
                let norm = vector::normalize(&mut dir, 1e-12);
                if norm <= 1e-12 {
                    dir.iter_mut().for_each(|d| *d = 0.0);
                }
                for k in 0..p {
                    o[i][j * p + k] = magnitude[i] * dir[k];
                }
            }
        }
        let mut mo = Vec::with_capacity(n);
        let mut vo = Vec::with_capacity(n);
        let mut fo = Vec::with_capacity(n);
        for oi in &o {
            let mut mo_i = vec![0.0; p];
            for (k, mo_ik) in mo_i.iter_mut().enumerate() {
                let series: Vec<f64> = (0..m).map(|j| oi[j * p + k]).collect();
                *mo_ik = vector::trapz(grid, &series) / span;
            }
            let dev: Vec<f64> = (0..m)
                .map(|j| {
                    (0..p)
                        .map(|k| {
                            let d = oi[j * p + k] - mo_i[k];
                            d * d
                        })
                        .sum::<f64>()
                })
                .collect();
            let vo_i = vector::trapz(grid, &dev) / span;
            let fo_i = vector::dot(&mo_i, &mo_i) + vo_i;
            mo.push(mo_i);
            vo.push(vo_i);
            fo.push(fo_i);
        }
        Ok(DirOutScores {
            mo,
            vo,
            fo,
            degenerate_directions,
        })
    }
}

impl FunctionalOutlierScorer for DirOut {
    fn name(&self) -> &'static str {
        "dir.out"
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        Ok(self.decompose(data)?.fo)
    }

    fn score_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<Vec<f64>> {
        Ok(self.decompose_against(reference, queries)?.fo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle_with(outlier: Vec<f64>, m: usize) -> GriddedDataSet {
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut curves: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let a = (i as f64 - 5.5) * 0.05;
                grid.iter()
                    .map(|&t| (std::f64::consts::TAU * t).sin() + a)
                    .collect()
            })
            .collect();
        curves.push(outlier);
        GriddedDataSet::from_univariate(grid, curves).unwrap()
    }

    #[test]
    fn magnitude_outlier_has_large_mo() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let shifted: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin() + 3.0)
            .collect();
        let d = bundle_with(shifted, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        let n = d.n();
        // outlier is the last sample: largest ‖MO‖, and largest FO
        let mo_norm: Vec<f64> = scores.mo.iter().map(|v| vector::norm2(v)).collect();
        let max_mo = mo_norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_mo, n - 1, "{mo_norm:?}");
        let max_fo = scores
            .fo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, n - 1);
        // a persistent magnitude shift has *low* VO relative to its MO²
        let i = n - 1;
        assert!(scores.fo[i] > scores.vo[i] * 2.0, "MO should dominate");
    }

    #[test]
    fn shape_outlier_has_large_vo() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        // phase-inverted: same range, different shape
        let inverted: Vec<f64> = grid
            .iter()
            .map(|&t| -(std::f64::consts::TAU * t).sin())
            .collect();
        let d = bundle_with(inverted, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        let n = d.n();
        let max_vo = scores
            .vo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_vo, n - 1, "{:?}", scores.vo);
        let max_fo = scores
            .fo
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, n - 1);
    }

    #[test]
    fn isolated_spike_detected() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut spiky: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin())
            .collect();
        spiky[20] += 5.0; // narrow magnitude peak
        let d = bundle_with(spiky, m);
        let s = DirOut::new().score(&d).unwrap();
        let max_fo = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_fo, d.n() - 1, "{s:?}");
    }

    #[test]
    fn ms_points_reflect_outlier_type() {
        let m = 40;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        // magnitude outlier: large ‖MO‖, modest VO
        let shifted: Vec<f64> = grid
            .iter()
            .map(|&t| (std::f64::consts::TAU * t).sin() + 3.0)
            .collect();
        let d = bundle_with(shifted, m);
        let pts = DirOut::new().decompose(&d).unwrap().ms_points();
        let n = d.n();
        let max_mo = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .unwrap()
            .0;
        assert_eq!(max_mo, n - 1);
        // shape outlier: large VO relative to the bundle
        let inverted: Vec<f64> = grid
            .iter()
            .map(|&t| -(std::f64::consts::TAU * t).sin())
            .collect();
        let d = bundle_with(inverted, m);
        let pts = DirOut::new().decompose(&d).unwrap().ms_points();
        let max_vo = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .unwrap()
            .0;
        assert_eq!(max_vo, n - 1);
    }

    #[test]
    fn scores_nonnegative_and_finite() {
        let m = 25;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let flat: Vec<f64> = grid.to_vec();
        let d = bundle_with(flat, m);
        let scores = DirOut::new().decompose(&d).unwrap();
        assert!(scores.fo.iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!(scores.vo.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn multivariate_input() {
        use mfod_linalg::Matrix;
        let m = 20;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut samples = Vec::new();
        for i in 0..10 {
            let a = (i as f64 - 4.5) * 0.1;
            let mut s = Matrix::zeros(m, 2);
            for (j, &t) in grid.iter().enumerate() {
                s[(j, 0)] = t + a;
                s[(j, 1)] = t * t + a;
            }
            samples.push(s);
        }
        // abnormal correlation: channel 2 inversely related
        let mut s = Matrix::zeros(m, 2);
        for (j, &t) in grid.iter().enumerate() {
            s[(j, 0)] = t;
            s[(j, 1)] = -t * t;
        }
        samples.push(s);
        let d = GriddedDataSet::new(grid, samples).unwrap();
        let scores = DirOut::new().score(&d).unwrap();
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 10, "{scores:?}");
        assert_eq!(DirOut::new().name(), "dir.out");
    }
}
