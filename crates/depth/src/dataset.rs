//! Grid-sampled functional datasets: the common input format of the
//! depth-based scorers.

use crate::error::DepthError;
use crate::Result;
use mfod_linalg::{vector, Matrix};

/// `n` functional samples evaluated on a shared strictly increasing grid of
/// `m` points, each sample having `p` channels — i.e. sample `i` is an
/// `m x p` matrix whose row `j` is `X_i(t_j) ∈ R^p`.
#[derive(Debug, Clone)]
pub struct GriddedDataSet {
    grid: Vec<f64>,
    samples: Vec<Matrix>,
    dim: usize,
}

impl GriddedDataSet {
    /// Validates shapes and builds the dataset.
    pub fn new(grid: Vec<f64>, samples: Vec<Matrix>) -> Result<Self> {
        if samples.is_empty() {
            return Err(DepthError::TooFewSamples { got: 0, need: 1 });
        }
        if grid.len() < 2 {
            return Err(DepthError::InvalidGrid(format!(
                "grid needs >= 2 points, got {}",
                grid.len()
            )));
        }
        if !vector::all_finite(&grid) {
            return Err(DepthError::NonFinite);
        }
        for w in grid.windows(2) {
            if w[0] >= w[1] {
                return Err(DepthError::InvalidGrid(
                    "grid must be strictly increasing".into(),
                ));
            }
        }
        let dim = samples[0].ncols();
        if dim == 0 {
            return Err(DepthError::ShapeMismatch(
                "samples must have >= 1 channel".into(),
            ));
        }
        for (i, s) in samples.iter().enumerate() {
            if s.nrows() != grid.len() || s.ncols() != dim {
                return Err(DepthError::ShapeMismatch(format!(
                    "sample {i} is {}x{}, expected {}x{dim}",
                    s.nrows(),
                    s.ncols(),
                    grid.len()
                )));
            }
            if !s.is_finite() {
                return Err(DepthError::NonFinite);
            }
        }
        Ok(GriddedDataSet { grid, samples, dim })
    }

    /// Builds a univariate dataset (`p = 1`) from per-sample value vectors.
    pub fn from_univariate(grid: Vec<f64>, values: Vec<Vec<f64>>) -> Result<Self> {
        let m = grid.len();
        let samples = values
            .into_iter()
            .map(|v| {
                if v.len() != m {
                    Err(DepthError::ShapeMismatch(format!(
                        "sample has {} values for {m} grid points",
                        v.len()
                    )))
                } else {
                    Ok(Matrix::from_vec(m, 1, v))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        GriddedDataSet::new(grid, samples)
    }

    /// Number of samples `n`.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Number of grid points `m`.
    pub fn m(&self) -> usize {
        self.grid.len()
    }

    /// Number of channels `p`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The evaluation grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Sample `i` as an `m x p` matrix.
    pub fn sample(&self, i: usize) -> &Matrix {
        &self.samples[i]
    }

    /// All samples.
    pub fn samples(&self) -> &[Matrix] {
        &self.samples
    }

    /// The point cloud at grid index `j`: an `n x p` matrix whose row `i` is
    /// `X_i(t_j)`.
    pub fn point_cloud(&self, j: usize) -> Matrix {
        let mut out = Matrix::zeros(self.n(), self.dim);
        for (i, s) in self.samples.iter().enumerate() {
            out.row_mut(i).copy_from_slice(s.row(j));
        }
        out
    }

    /// The values of channel `k` for every sample at grid index `j`.
    pub fn channel_at(&self, j: usize, k: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s[(j, k)]).collect()
    }

    /// Channel `k` of sample `i` as a curve over the grid.
    pub fn curve(&self, i: usize, k: usize) -> Vec<f64> {
        self.samples[i].col(k)
    }

    /// Concatenates two datasets sharing the same grid and channel count.
    pub fn concat(&self, other: &GriddedDataSet) -> Result<Self> {
        if self.grid != other.grid {
            return Err(DepthError::InvalidGrid(
                "cannot concatenate datasets with different grids".into(),
            ));
        }
        if self.dim != other.dim {
            return Err(DepthError::ShapeMismatch(format!(
                "channel mismatch: {} vs {}",
                self.dim, other.dim
            )));
        }
        let mut samples = self.samples.clone();
        samples.extend(other.samples.iter().cloned());
        GriddedDataSet::new(self.grid.clone(), samples)
    }

    /// Restricts to a subset of sample indices (used by train/test splits).
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        let samples = indices
            .iter()
            .map(|&i| {
                self.samples
                    .get(i)
                    .cloned()
                    .ok_or_else(|| DepthError::InvalidParameter(format!("index {i} out of range")))
            })
            .collect::<Result<Vec<_>>>()?;
        GriddedDataSet::new(self.grid.clone(), samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GriddedDataSet {
        let grid = vec![0.0, 0.5, 1.0];
        let s1 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0], &[2.0, 3.0]]);
        let s2 = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, 2.0]]);
        GriddedDataSet::new(grid, vec![s1, s2]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.n(), 2);
        assert_eq!(d.m(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.grid(), &[0.0, 0.5, 1.0]);
        assert_eq!(d.sample(0)[(1, 1)], 2.0);
        assert_eq!(d.samples().len(), 2);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            GriddedDataSet::new(vec![0.0, 1.0], vec![]),
            Err(DepthError::TooFewSamples { .. })
        ));
        assert!(matches!(
            GriddedDataSet::new(vec![0.0], vec![Matrix::zeros(1, 1)]),
            Err(DepthError::InvalidGrid(_))
        ));
        assert!(matches!(
            GriddedDataSet::new(vec![0.0, 0.0], vec![Matrix::zeros(2, 1)]),
            Err(DepthError::InvalidGrid(_))
        ));
        assert!(matches!(
            GriddedDataSet::new(vec![0.0, 1.0], vec![Matrix::zeros(3, 1)]),
            Err(DepthError::ShapeMismatch(_))
        ));
        let nan = Matrix::from_rows(&[&[f64::NAN], &[0.0]]);
        assert!(matches!(
            GriddedDataSet::new(vec![0.0, 1.0], vec![nan]),
            Err(DepthError::NonFinite)
        ));
        // inconsistent channel counts
        assert!(GriddedDataSet::new(
            vec![0.0, 1.0],
            vec![Matrix::zeros(2, 1), Matrix::zeros(2, 2)]
        )
        .is_err());
    }

    #[test]
    fn univariate_builder() {
        let d = GriddedDataSet::from_univariate(
            vec![0.0, 1.0],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
        .unwrap();
        assert_eq!(d.n(), 3);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.curve(2, 0), vec![5.0, 6.0]);
        assert!(GriddedDataSet::from_univariate(vec![0.0, 1.0], vec![vec![1.0]]).is_err());
    }

    #[test]
    fn point_cloud_extraction() {
        let d = tiny();
        let pc = d.point_cloud(1);
        assert_eq!(pc.shape(), (2, 2));
        assert_eq!(pc.row(0), &[1.0, 2.0]);
        assert_eq!(pc.row(1), &[2.0, 1.0]);
        assert_eq!(d.channel_at(2, 0), vec![2.0, 3.0]);
    }

    #[test]
    fn subset_selection() {
        let d = tiny();
        let s = d.subset(&[1]).unwrap();
        assert_eq!(s.n(), 1);
        assert_eq!(s.sample(0)[(0, 0)], 1.0);
        assert!(d.subset(&[5]).is_err());
        // duplicated indices are allowed (bootstrap-style)
        assert_eq!(d.subset(&[0, 0, 1]).unwrap().n(), 3);
    }
}
