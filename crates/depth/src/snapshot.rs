//! Plain-data snapshot forms of the depth scorers.
//!
//! Depth scorers are configuration-only (they carry no fitted state), so
//! their snapshot is just the constructor parameters. The wire codecs
//! live in the `mfod` crate next to the other artifact kinds — this
//! module is pure data, keeping `mfod-depth` free of a persistence
//! dependency.

use crate::projection::ProjectionConfig;
use crate::{DirOut, FunctionalOutlierScorer, Funta, Result};
use std::sync::Arc;

/// Constructor parameters of a persistable depth scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DepthScorerSnapshot {
    /// [`Funta`] with its per-tail trimming fraction.
    Funta {
        /// See [`Funta::trim`] (`0.0` = plain FUNTA).
        trim: f64,
    },
    /// [`DirOut`] with its random-projection settings.
    DirOut {
        /// See [`ProjectionConfig::n_directions`].
        n_directions: usize,
        /// See [`ProjectionConfig::seed`].
        seed: u64,
    },
}

impl DepthScorerSnapshot {
    /// The name the restored scorer will report (e.g. `"funta"`).
    pub fn scorer_name(&self) -> &'static str {
        match self {
            DepthScorerSnapshot::Funta { trim } if *trim > 0.0 => "rfunta",
            DepthScorerSnapshot::Funta { .. } => "funta",
            DepthScorerSnapshot::DirOut { .. } => "dir.out",
        }
    }

    /// Rebuilds the scorer, re-running the constructors' parameter
    /// validation (e.g. the rFUNTA trim range), so a tampered snapshot
    /// cannot resurrect a scorer the constructor would have rejected.
    pub fn restore(&self) -> Result<Arc<dyn FunctionalOutlierScorer>> {
        match *self {
            DepthScorerSnapshot::Funta { trim } => Ok(Arc::new(Funta::robust(trim)?)),
            DepthScorerSnapshot::DirOut { n_directions, seed } => Ok(Arc::new(DirOut {
                projection: ProjectionConfig { n_directions, seed },
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funta_roundtrips_through_snapshot() {
        let f = Funta::robust(0.1).unwrap();
        let snap = f.snapshot().unwrap();
        assert_eq!(snap, DepthScorerSnapshot::Funta { trim: 0.1 });
        assert_eq!(snap.scorer_name(), "rfunta");
        let restored = snap.restore().unwrap();
        assert_eq!(restored.name(), "rfunta");
        assert_eq!(Funta::new().snapshot().unwrap().scorer_name(), "funta");
    }

    #[test]
    fn dirout_roundtrips_through_snapshot() {
        let d = DirOut {
            projection: ProjectionConfig {
                n_directions: 32,
                seed: 99,
            },
        };
        let snap = d.snapshot().unwrap();
        assert_eq!(
            snap,
            DepthScorerSnapshot::DirOut {
                n_directions: 32,
                seed: 99
            }
        );
        assert_eq!(snap.restore().unwrap().name(), "dir.out");
    }

    #[test]
    fn invalid_trim_is_rejected_on_restore() {
        let snap = DepthScorerSnapshot::Funta { trim: 0.7 };
        assert!(snap.restore().is_err());
    }
}
