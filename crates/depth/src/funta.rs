//! FUNTA — *functional tangential angle* pseudo-depth (Kuhnt & Rehage,
//! *JMVA* 2016), one of the paper's two baselines.
//!
//! For every pair of curves, FUNTA finds the points where they intersect
//! (sign changes of the difference of their linear interpolants) and records
//! the intersection angle between the two segments. Deep (central) curves
//! cross others at shallow angles; shape outliers cross steeply. The
//! pseudo-depth is `1 − mean(|γ|/π)`; we report the **outlyingness**
//! `mean(|γ|/π)` directly so that higher = more outlying.
//!
//! For multivariate functional data the per-channel outlyingness values are
//! averaged (the paper: "average these angles over both their number and
//! the parameters"). As the paper notes (Sec. 1.2), FUNTA only targets
//! persistent *shape* outliers: magnitude outliers that never intersect the
//! bulk produce no angles at all and receive outlyingness 0 — faithfully
//! reproduced here.

use crate::dataset::GriddedDataSet;
use crate::error::DepthError;
use crate::{FunctionalOutlierScorer, Result};

/// The FUNTA scorer.
#[derive(Debug, Clone)]
pub struct Funta {
    /// Fraction trimmed from each tail of the angle distribution before
    /// averaging (`0.0` = plain FUNTA; `> 0` = the robustified rFUNTA
    /// variant of Kuhnt & Rehage).
    pub trim: f64,
}

impl Default for Funta {
    fn default() -> Self {
        Funta { trim: 0.0 }
    }
}

impl Funta {
    /// Plain FUNTA (untrimmed mean of intersection angles).
    pub fn new() -> Self {
        Funta::default()
    }

    /// Robustified rFUNTA with the given per-tail trimming fraction
    /// (`0 <= trim < 0.5`).
    pub fn robust(trim: f64) -> Result<Self> {
        if !(0.0..0.5).contains(&trim) {
            return Err(DepthError::InvalidParameter(format!(
                "trim must be in [0, 0.5), got {trim}"
            )));
        }
        Ok(Funta { trim })
    }

    /// Collects the normalized intersection angles of curve `i` against all
    /// other curves in channel `k`.
    fn angles_for(&self, data: &GriddedDataSet, i: usize, k: usize) -> Vec<f64> {
        let xi = data.sample(i);
        let mut angles = Vec::new();
        for j in 0..data.n() {
            if j == i {
                continue;
            }
            Self::angles_between(data.grid(), xi, data.sample(j), k, &mut angles);
        }
        angles
    }

    /// Appends the normalized intersection angles between two curves'
    /// channel `k` to `angles`.
    fn angles_between(
        grid: &[f64],
        xi: &mfod_linalg::Matrix,
        xj: &mfod_linalg::Matrix,
        k: usize,
        angles: &mut Vec<f64>,
    ) {
        let m = grid.len();
        for l in 0..m - 1 {
            let d0 = xi[(l, k)] - xj[(l, k)];
            let d1 = xi[(l + 1, k)] - xj[(l + 1, k)];
            // Crossing inside segment l (strict sign change), or exact
            // touch at the left endpoint counted once.
            let crosses = (d0 > 0.0 && d1 < 0.0) || (d0 < 0.0 && d1 > 0.0) || d0 == 0.0;
            if !crosses {
                continue;
            }
            let dt = grid[l + 1] - grid[l];
            let slope_i = (xi[(l + 1, k)] - xi[(l, k)]) / dt;
            let slope_j = (xj[(l + 1, k)] - xj[(l, k)]) / dt;
            // intersection angle between the two segments, in [0, π)
            let gamma = (slope_i.atan() - slope_j.atan()).abs();
            angles.push(gamma / std::f64::consts::PI);
        }
    }

    fn aggregate(&self, mut angles: Vec<f64>) -> f64 {
        if angles.is_empty() {
            // a curve that never intersects anything yields no angle
            // information; FUNTA leaves it maximally deep
            return 0.0;
        }
        if self.trim > 0.0 {
            angles.sort_by(|a, b| a.total_cmp(b));
            let cut = ((angles.len() as f64) * self.trim).floor() as usize;
            if angles.len() > 2 * cut {
                angles = angles[cut..angles.len() - cut].to_vec();
            }
        }
        angles.iter().sum::<f64>() / angles.len() as f64
    }
}

impl FunctionalOutlierScorer for Funta {
    fn name(&self) -> &'static str {
        if self.trim > 0.0 {
            "rfunta"
        } else {
            "funta"
        }
    }

    fn snapshot(&self) -> Option<crate::DepthScorerSnapshot> {
        Some(crate::DepthScorerSnapshot::Funta { trim: self.trim })
    }

    fn score(&self, data: &GriddedDataSet) -> Result<Vec<f64>> {
        if data.n() < 2 {
            return Err(DepthError::TooFewSamples {
                got: data.n(),
                need: 2,
            });
        }
        let mut scores = Vec::with_capacity(data.n());
        for i in 0..data.n() {
            // average the per-channel outlyingness over the p channels
            let mut total = 0.0;
            for k in 0..data.dim() {
                let angles = self.angles_for(data, i, k);
                total += self.aggregate(angles);
            }
            scores.push(total / data.dim() as f64);
        }
        Ok(scores)
    }

    fn score_against(
        &self,
        reference: &GriddedDataSet,
        queries: &GriddedDataSet,
    ) -> Result<Vec<f64>> {
        if reference.n() < 1 {
            return Err(DepthError::TooFewSamples {
                got: reference.n(),
                need: 1,
            });
        }
        if reference.m() != queries.m() || reference.dim() != queries.dim() {
            return Err(DepthError::ShapeMismatch(
                "reference and queries must share grid and channels".into(),
            ));
        }
        let mut scores = Vec::with_capacity(queries.n());
        for i in 0..queries.n() {
            let xi = queries.sample(i);
            let mut total = 0.0;
            for k in 0..queries.dim() {
                let mut angles = Vec::new();
                for j in 0..reference.n() {
                    Self::angles_between(queries.grid(), xi, reference.sample(j), k, &mut angles);
                }
                total += self.aggregate(angles);
            }
            scores.push(total / queries.dim() as f64);
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bundle of gently crossing lines (slopes near 1 through a common
    /// pivot) plus one steeply descending crosser.
    fn crossing_bundle() -> GriddedDataSet {
        let m = 21;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut curves = Vec::new();
        for i in 0..8 {
            // slopes 0.86 … 1.14 pivoting around (0.5, 0.5): the inliers
            // cross each other at shallow angles
            let slope = 0.86 + i as f64 * 0.04;
            curves.push(
                grid.iter()
                    .map(|&t| 0.5 + slope * (t - 0.5))
                    .collect::<Vec<f64>>(),
            );
        }
        // steep crosser: descends through the whole bundle
        curves.push(grid.iter().map(|&t| 1.0 - 4.0 * t).collect::<Vec<f64>>());
        GriddedDataSet::from_univariate(grid, curves).unwrap()
    }

    #[test]
    fn steep_crosser_is_most_outlying() {
        let d = crossing_bundle();
        let s = Funta::new().score(&d).unwrap();
        let max_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 8, "{s:?}");
        // outlyingness is in [0, 1]
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // inliers cross each other at shallow angles: their scores must be
        // clearly below the crosser's
        for i in 0..8 {
            assert!(s[i] < s[8] * 0.8, "inlier {i} score {} vs {}", s[i], s[8]);
        }
    }

    #[test]
    fn parallel_curves_have_zero_outlyingness() {
        // Curves that never cross produce no angles at all.
        let grid: Vec<f64> = (0..10).map(|j| j as f64).collect();
        let curves: Vec<Vec<f64>> = (0..5)
            .map(|i| grid.iter().map(|&t| t + i as f64).collect())
            .collect();
        let d = GriddedDataSet::from_univariate(grid, curves).unwrap();
        let s = Funta::new().score(&d).unwrap();
        assert!(s.iter().all(|&v| v == 0.0), "{s:?}");
    }

    #[test]
    fn identical_slopes_crossing_at_zero_angle() {
        // Two identical-slope curves that touch: the angle is zero.
        let grid = vec![0.0, 1.0, 2.0];
        let c1 = vec![0.0, 1.0, 2.0];
        let c2 = vec![0.0, 1.0, 2.0]; // identical curve: d0 == 0 everywhere
        let d = GriddedDataSet::from_univariate(grid, vec![c1, c2]).unwrap();
        let s = Funta::new().score(&d).unwrap();
        assert!(s.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn shape_outlier_in_sine_bundle() {
        // Phase-inverted sine among in-phase sines: a persistent shape
        // outlier that FUNTA is designed to catch.
        let m = 50;
        let grid: Vec<f64> = (0..m).map(|j| j as f64 / (m - 1) as f64).collect();
        let mut curves: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                let a = 1.0 + i as f64 * 0.02;
                grid.iter()
                    .map(|&t| a * (std::f64::consts::TAU * t).sin())
                    .collect()
            })
            .collect();
        curves.push(
            grid.iter()
                .map(|&t| -(std::f64::consts::TAU * t).sin())
                .collect(),
        );
        let d = GriddedDataSet::from_univariate(grid, curves).unwrap();
        let s = Funta::new().score(&d).unwrap();
        let max_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 9, "{s:?}");
    }

    #[test]
    fn multichannel_averages_channels() {
        use mfod_linalg::Matrix;
        let grid = vec![0.0, 0.5, 1.0];
        // channel 0: curves cross; channel 1: all identical (no angles)
        let s1 = Matrix::from_rows(&[&[0.0, 5.0], &[0.5, 5.0], &[1.0, 5.0]]);
        let s2 = Matrix::from_rows(&[&[1.0, 5.0], &[0.5, 5.0], &[0.0, 5.0]]);
        let d = GriddedDataSet::new(grid, vec![s1, s2]).unwrap();
        let s = Funta::new().score(&d).unwrap();
        // channel 0 angle: |atan(1) - atan(-1)| / π = (π/2)/π = 0.5, halved
        // by the flat channel's zero
        assert!((s[0] - 0.25).abs() < 1e-12, "{s:?}");
        assert!((s[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn robust_variant_trims_extremes() {
        let d = crossing_bundle();
        let plain = Funta::new().score(&d).unwrap();
        let robust = Funta::robust(0.2).unwrap().score(&d).unwrap();
        assert_eq!(plain.len(), robust.len());
        // trimming must not create scores outside [0, 1]
        assert!(robust.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(Funta::robust(0.5).is_err());
        assert!(Funta::robust(-0.1).is_err());
        assert_eq!(Funta::new().name(), "funta");
        assert_eq!(Funta::robust(0.1).unwrap().name(), "rfunta");
    }

    #[test]
    fn needs_two_samples() {
        let grid = vec![0.0, 1.0];
        let d = GriddedDataSet::from_univariate(grid, vec![vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            Funta::new().score(&d),
            Err(DepthError::TooFewSamples { .. })
        ));
    }
}
